//! The recursive tree representation and its tag-string form.

use std::fmt;
use std::sync::Arc;

/// A node label (XML tag name). Cheap to clone; compared by symbol.
/// `Arc`-backed so labels (and the tokens/query plans holding them) can
/// cross threads.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a label for the given tag name.
    pub fn new(s: impl AsRef<str>) -> Label {
        Label(Arc::from(s.as_ref()))
    }

    /// The tag name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Label {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Label {
        Label(Arc::from(s))
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", self.as_str())
    }
}

impl std::borrow::Borrow<str> for Label {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

/// One symbol of a tag string: an opening or closing tag (§4.2's `Symbol`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Token {
    /// `<a>`
    Open(Label),
    /// `</a>`
    Close(Label),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Open(l) => write!(f, "<{l}>"),
            Token::Close(l) => write!(f, "</{l}>"),
        }
    }
}

struct TreeNode {
    label: Label,
    children: Vec<Tree>,
}

/// An immutable unranked ordered labeled tree with refcount-cheap clones.
///
/// Equality is deep value equality of trees, which per §3 is the same as
/// equality of the corresponding tag strings.
///
/// Nodes are `Arc`-backed, so a `Tree` is `Send + Sync`: the data-parallel
/// evaluators build shared values (notably the `$root` tree) **once** and
/// hand each worker a pointer-bump clone, instead of materializing one
/// copy per worker. Clones stay O(1); the cost of the atomic refcount is
/// in the noise next to the evaluator's allocation traffic (the
/// `par_scaling` bench tracks it).
#[derive(Clone)]
pub struct Tree(Arc<TreeNode>);

impl Tree {
    /// A leaf node (an atomic value in the paper's sense).
    pub fn leaf(label: impl Into<Label>) -> Tree {
        Tree::node(label, Vec::new())
    }

    /// An inner node with the given children, in order.
    pub fn node(label: impl Into<Label>, children: impl IntoIterator<Item = Tree>) -> Tree {
        Tree(Arc::new(TreeNode {
            label: label.into(),
            children: children.into_iter().collect(),
        }))
    }

    /// The label of the root node.
    pub fn label(&self) -> &Label {
        &self.0.label
    }

    /// The child subtrees, in document order.
    pub fn children(&self) -> &[Tree] {
        &self.0.children
    }

    /// True iff the node has no children (is an atomic value).
    pub fn is_leaf(&self) -> bool {
        self.0.children.is_empty()
    }

    /// All proper descendant subtrees in document (preorder) order.
    pub fn descendants(&self) -> Vec<Tree> {
        let mut out = Vec::new();
        fn walk(t: &Tree, out: &mut Vec<Tree>) {
            for c in t.children() {
                out.push(c.clone());
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// The subtrees selected from this node by `axis`, in document order.
    pub fn axis(&self, axis: crate::Axis) -> Vec<Tree> {
        match axis {
            crate::Axis::Child => self.children().to_vec(),
            crate::Axis::Descendant => self.descendants(),
            crate::Axis::SelfAxis => vec![self.clone()],
            crate::Axis::DescendantOrSelf => {
                let mut out = vec![self.clone()];
                out.extend(self.descendants());
                out
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> u64 {
        1 + self.children().iter().map(Tree::size).sum::<u64>()
    }

    /// Height of the tree (a leaf has height 1).
    pub fn height(&self) -> u64 {
        1 + self.children().iter().map(Tree::height).max().unwrap_or(0)
    }

    /// The tag string of the tree, e.g. `<a><b></b></a>`.
    pub fn tokens(&self) -> Vec<Token> {
        let mut out = Vec::with_capacity(2 * self.size() as usize);
        self.push_tokens(&mut out);
        out
    }

    fn push_tokens(&self, out: &mut Vec<Token>) {
        out.push(Token::Open(self.label().clone()));
        for c in self.children() {
            c.push_tokens(out);
        }
        out.push(Token::Close(self.label().clone()));
    }

    /// Serializes to XML text. Leaves print as `<a/>`.
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        self.write_xml(&mut s);
        s
    }

    fn write_xml(&self, out: &mut String) {
        if self.is_leaf() {
            out.push('<');
            out.push_str(self.label().as_str());
            out.push_str("/>");
        } else {
            out.push('<');
            out.push_str(self.label().as_str());
            out.push('>');
            for c in self.children() {
                c.write_xml(out);
            }
            out.push_str("</");
            out.push_str(self.label().as_str());
            out.push('>');
        }
    }

    /// Rebuilds a forest (list of trees) from a well-formed token stream.
    pub fn forest_from_tokens(tokens: &[Token]) -> Result<Vec<Tree>, crate::XmlError> {
        #[derive(Debug)]
        struct Frame {
            label: Label,
            children: Vec<Tree>,
        }
        let mut stack: Vec<Frame> = Vec::new();
        let mut roots: Vec<Tree> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            match tok {
                Token::Open(l) => stack.push(Frame {
                    label: l.clone(),
                    children: Vec::new(),
                }),
                Token::Close(l) => {
                    let frame = stack.pop().ok_or_else(|| crate::XmlError {
                        offset: i,
                        message: format!("unmatched closing tag </{l}>"),
                    })?;
                    if &frame.label != l {
                        return Err(crate::XmlError {
                            offset: i,
                            message: format!("mismatched tags: <{}> closed by </{l}>", frame.label),
                        });
                    }
                    let t = Tree::node(frame.label, frame.children);
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(t),
                        None => roots.push(t),
                    }
                }
            }
        }
        if let Some(f) = stack.last() {
            return Err(crate::XmlError {
                offset: tokens.len(),
                message: format!("unclosed tag <{}>", f.label),
            });
        }
        Ok(roots)
    }
}

impl PartialEq for Tree {
    fn eq(&self, other: &Tree) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.label() == other.label() && self.children() == other.children())
    }
}

impl Eq for Tree {}

impl PartialOrd for Tree {
    fn partial_cmp(&self, other: &Tree) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tree {
    fn cmp(&self, other: &Tree) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.label()
            .cmp(other.label())
            .then_with(|| self.children().cmp(other.children()))
    }
}

impl std::hash::Hash for Tree {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.label().hash(state);
        self.children().hash(state);
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_xml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Axis;

    fn sample() -> Tree {
        // <c><d/><a/><a><c/></a></c> — the Remark 6.7 example document.
        Tree::node(
            "c",
            [
                Tree::leaf("d"),
                Tree::leaf("a"),
                Tree::node("a", [Tree::leaf("c")]),
            ],
        )
    }

    #[test]
    fn xml_serialization_matches_paper_example() {
        assert_eq!(sample().to_xml(), "<c><d/><a/><a><c/></a></c>");
    }

    #[test]
    fn tokens_round_trip() {
        let t = sample();
        let toks = t.tokens();
        assert_eq!(toks.len(), 2 * t.size() as usize);
        let forest = Tree::forest_from_tokens(&toks).unwrap();
        assert_eq!(forest, vec![t]);
    }

    #[test]
    fn forest_from_tokens_accepts_multiple_roots() {
        let t1 = Tree::leaf("a");
        let t2 = Tree::node("b", [Tree::leaf("c")]);
        let mut toks = t1.tokens();
        toks.extend(t2.tokens());
        assert_eq!(Tree::forest_from_tokens(&toks).unwrap(), vec![t1, t2]);
    }

    #[test]
    fn forest_from_tokens_rejects_ill_formed() {
        use Token::*;
        let l = |s: &str| Label::from(s);
        assert!(Tree::forest_from_tokens(&[Close(l("a"))]).is_err());
        assert!(Tree::forest_from_tokens(&[Open(l("a"))]).is_err());
        assert!(Tree::forest_from_tokens(&[Open(l("a")), Close(l("b"))]).is_err());
    }

    #[test]
    fn axes() {
        let t = sample();
        assert_eq!(t.axis(Axis::Child).len(), 3);
        assert_eq!(t.axis(Axis::SelfAxis), vec![t.clone()]);
        // Descendants in document order: d, a, a, c
        let d: Vec<String> = t
            .axis(Axis::Descendant)
            .iter()
            .map(|x| x.label().to_string())
            .collect();
        assert_eq!(d, vec!["d", "a", "a", "c"]);
        assert_eq!(t.axis(Axis::DescendantOrSelf).len(), 5);
    }

    #[test]
    fn deep_equality_is_structural() {
        let t1 = Tree::node("a", [Tree::leaf("b"), Tree::leaf("c")]);
        let t2 = Tree::node("a", [Tree::leaf("b"), Tree::leaf("c")]);
        let t3 = Tree::node("a", [Tree::leaf("c"), Tree::leaf("b")]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3, "trees are ordered");
    }

    #[test]
    fn metrics() {
        let t = sample();
        assert_eq!(t.size(), 5);
        assert_eq!(t.height(), 3);
        assert!(Tree::leaf("x").is_leaf());
        assert!(!t.is_leaf());
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::Open(Label::from("a")).to_string(), "<a>");
        assert_eq!(Token::Close(Label::from("a")).to_string(), "</a>");
    }
}
