//! The [`Arbitrary`] trait and [`any`], for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
