//! Randomized structural testing of the §7 fragment machinery: a
//! generator for random XQ∼ queries drives the Proposition 7.1
//! translations and the Lemma 3.2 monad-algebra translation, checking
//! semantic preservation against the Figure 1 reference on random
//! documents.

use cv_xtree::{random_tree, Axis, NodeTest, Tree, TreeGen};
use proptest::prelude::*;
use xq_core::ast::{Cond, EqMode, Query, Var};
use xq_core::{
    boolean_result, is_composition_free, is_xq_tilde, ma_invariant_holds, to_composition_free,
    to_xq_tilde,
};

/// Variables in scope are `$root` plus loop variables `v0..v{depth}`.
fn var_in_scope(depth: usize) -> impl Strategy<Value = Var> {
    (0..=depth).prop_map(|i| {
        if i == 0 {
            Var::root()
        } else {
            Var::new(format!("v{}", i - 1))
        }
    })
}

fn node_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::Wildcard),
        Just(NodeTest::tag("a")),
        Just(NodeTest::tag("b")),
    ]
}

fn axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        3 => Just(Axis::Child),
        1 => Just(Axis::Descendant),
        1 => Just(Axis::DescendantOrSelf),
        1 => Just(Axis::SelfAxis),
    ]
}

/// A step on an in-scope variable — the only `for`-source XQ∼ allows.
fn var_step(depth: usize) -> impl Strategy<Value = Query> {
    (var_in_scope(depth), axis(), node_test())
        .prop_map(|(v, ax, nt)| Query::step(Query::Var(v), ax, nt))
}

/// Random XQ∼ queries with `depth` loop variables in scope.
///
/// NOTE: `crates/xtree/tests/arena_diff.rs` carries a deliberate copy of
/// this grammar (its suite must run from `cv_xtree`, and a shared helper
/// would put the generator on `xq_core`'s public surface). If you extend
/// the grammar here, mirror it there.
fn xq_tilde(depth: usize, size: u32) -> BoxedStrategy<Query> {
    if size == 0 {
        return prop_oneof![
            Just(Query::Empty),
            Just(Query::leaf("k")),
            var_in_scope(depth).prop_map(Query::Var),
            var_step(depth),
        ]
        .boxed();
    }
    let d = depth;
    prop_oneof![
        2 => var_step(d),
        2 => (prop_oneof![Just("w"), Just("x")], xq_tilde(d, size - 1))
            .prop_map(|(t, b)| Query::elem(t, b)),
        2 => (xq_tilde(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(a, b)| Query::seq([a, b])),
        3 => (var_step(d), xq_tilde(d + 1, size - 1)).prop_map(move |(s, b)| {
            Query::for_in(format!("v{d}").as_str(), s, b)
        }),
        2 => (cond(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(c, b)| Query::if_then(c, b)),
        1 => var_in_scope(d).prop_map(Query::Var),
    ]
    .boxed()
}

/// XQ∼ conditions: queries, var = var, $z = ⟨a/⟩, not.
fn cond(depth: usize, size: u32) -> BoxedStrategy<Cond> {
    let base =
        prop_oneof![
            (var_in_scope(depth), var_in_scope(depth), eq_mode())
                .prop_map(|(x, y, m)| Cond::VarEq(x, y, m)),
            (var_in_scope(depth), prop_oneof![Just("a"), Just("k")])
                .prop_map(|(x, t)| Cond::ConstEq(x, t.into(), EqMode::Atomic)),
        ];
    if size == 0 {
        return base.boxed();
    }
    prop_oneof![
        2 => base,
        2 => xq_tilde(depth, size.min(1)).prop_map(Cond::query),
        1 => cond(depth, size - 1).prop_map(Cond::negate),
    ]
    .boxed()
}

fn eq_mode() -> impl Strategy<Value = EqMode> {
    prop_oneof![Just(EqMode::Deep), Just(EqMode::Atomic)]
}

/// The shared document corpus, built once per test thread and reused
/// across every generated case (it was rebuilt per case before — the
/// dominant cost of this suite, see ROADMAP "Slow suite"). `Tree` is
/// `Rc`-based, so the returned clone is three pointer bumps. With
/// `XQ_ARENA` set, every corpus document is routed through the arena
/// store (`Tree → ArenaDoc → Tree`, see `xq_core::doc`), so these suites
/// double as arena agreement suites.
fn docs() -> Vec<Tree> {
    thread_local! {
        static DOCS: Vec<Tree> = {
            let repr = xq_core::DocRepr::from_env();
            (0..3u64)
                .map(|seed| {
                    let mut g = TreeGen::new(seed);
                    repr.roundtrip(&random_tree(&mut g, 10, &["a", "b", "k"]))
                })
                .collect()
        };
    }
    DOCS.with(|d| d.clone())
}

/// Cases per property: `XQ_RANDOM_CASES` if set (CI uses 16), else 64.
fn cases() -> u32 {
    std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Prop 7.1 round trip: XQ∼ → XQ⁻ → XQ∼, all three equivalent.
    #[test]
    fn prop_7_1_translations_preserve_semantics(q in xq_tilde(0, 3)) {
        prop_assume!(is_xq_tilde(&q));
        let minus = to_composition_free(&q);
        prop_assert!(is_composition_free(&minus), "not XQ⁻: {}", minus);
        let back = to_xq_tilde(&minus);
        prop_assert!(is_xq_tilde(&back), "not XQ∼: {}", back);
        for doc in &docs() {
            let want = boolean_result(&q, doc).unwrap();
            prop_assert_eq!(
                boolean_result(&minus, doc).unwrap(),
                want,
                "XQ⁻ of {} on {}", q, doc
            );
            prop_assert_eq!(
                boolean_result(&back, doc).unwrap(),
                want,
                "XQ∼ round trip of {} on {}", q, doc
            );
        }
    }

    /// Lemma 3.2 on random queries: the Figure 2 translation commutes
    /// with evaluation through the C/C′ encodings.
    #[test]
    fn lemma_3_2_on_random_queries(q in xq_tilde(0, 2)) {
        for doc in &docs() {
            prop_assert!(
                ma_invariant_holds(&q, doc).unwrap(),
                "Lemma 3.2 failed for {} on {}", q, doc
            );
        }
    }

    /// Desugaring (Prop 3.1) preserves the Figure 1 semantics.
    #[test]
    fn desugaring_preserves_semantics(q in xq_tilde(0, 3)) {
        let mut fresh = 0;
        let core = q.desugar(&mut fresh);
        for doc in &docs() {
            prop_assert_eq!(
                xq_core::eval_query(&core, doc).unwrap(),
                xq_core::eval_query(&q, doc).unwrap(),
                "desugaring changed {} on {}", q, doc
            );
        }
    }

    /// The nested-loop engine agrees with the reference on random XQ⁻.
    #[test]
    fn nested_loop_on_random_queries(q in xq_tilde(0, 3)) {
        let minus = to_composition_free(&q);
        prop_assume!(is_composition_free(&minus));
        for doc in &docs() {
            let d = cv_xtree::ArenaDoc::from_tree(doc);
            let mut engine = xq_compfree::NestedLoopEngine::new(&d);
            let got = engine.boolean(&minus).unwrap();
            let want = boolean_result(&minus, doc).unwrap();
            prop_assert_eq!(got, want, "{} on {}", minus, doc);
        }
    }

    /// The streaming engine — lazy discipline and buffered fast path —
    /// agrees with the reference on random XQ∼.
    #[test]
    fn streaming_on_random_queries(q in xq_tilde(0, 2)) {
        for doc in &docs() {
            let (got, _) = xq_stream::stream_query(&q, doc, 50_000_000)
                .unwrap_or_else(|e| panic!("{q}: {e}"));
            let want: Vec<cv_xtree::Token> = xq_core::eval_query(&q, doc)
                .unwrap()
                .iter()
                .flat_map(Tree::tokens)
                .collect();
            prop_assert_eq!(&got, &want, "{} on {}", q, doc);
            let (fast, _) = xq_stream::stream_query_buffered(
                &q, doc, 50_000_000, xq_stream::DEFAULT_BUFFER_LIMIT,
            ).unwrap_or_else(|e| panic!("buffered {q}: {e}"));
            prop_assert_eq!(&fast, &want, "buffered {} on {}", q, doc);
        }
    }
}
