//! Offline stub of [criterion](https://docs.rs/criterion) — see
//! `stubs/README.md`.
//!
//! Provides `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and [`black_box`].
//! Each benchmark is warmed up once and then timed for `sample_size`
//! iterations; the mean ns/iter is printed. This is a smoke-timing harness
//! (enough to compare orders of magnitude and keep bench targets compiling),
//! not a statistics engine.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Timed iterations per benchmark unless the group overrides it.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. (The stub keeps no cross-benchmark state.)
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times a closure; handed to benchmark bodies by the runners above.
pub struct Bencher {
    iterations: u64,
    mean_nanos: Option<f64>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `self.iterations` timed times, and
    /// records the mean.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.mean_nanos = Some(total / self.iterations as f64);
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iterations: sample_size as u64,
        mean_nanos: None,
    };
    f(&mut b);
    match b.mean_nanos {
        Some(ns) => println!("bench {label:<50} {ns:>14.1} ns/iter (n={sample_size})"),
        None => println!("bench {label:<50} (no b.iter call)"),
    }
}

/// Declares a group function invoking each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
