//! T15 — the arena document store vs the `Rc` tree (`cv_xtree::arena`):
//! document build, descendant-axis scan, and full-query streaming over
//! the doubling-family documents. The harness binary prints the
//! corresponding table; this target keeps the workload compiling and
//! timeable under `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cv_xtree::{Axis, DoublingFamily, NodeTest, Tree};
use xq_core::parse_query;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena_vs_rc/build");
    for (family, n) in [
        (DoublingFamily::Binary, 12u32),
        (DoublingFamily::Wide, 13),
        (DoublingFamily::Comb, 10),
    ] {
        g.bench_function(format!("{family}-n{n}-tree"), |b| {
            b.iter(|| black_box(family.tree(n)))
        });
        g.bench_function(format!("{family}-n{n}-arena"), |b| {
            b.iter(|| black_box(family.arena(n)))
        });
    }
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena_vs_rc/parse");
    let xml = DoublingFamily::Binary.tree(12).to_xml();
    g.bench_function("binary-n12-parse-tree", |b| {
        b.iter(|| black_box(cv_xtree::parse_tree(&xml).unwrap()))
    });
    g.bench_function("binary-n12-parse-arena", |b| {
        b.iter(|| black_box(cv_xtree::ArenaDoc::parse(&xml).unwrap()))
    });
    g.finish();
}

fn bench_axis_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena_vs_rc/axis-scan");
    for (family, n) in [(DoublingFamily::Binary, 12u32), (DoublingFamily::Wide, 13)] {
        let tree = family.tree(n);
        let arena = family.arena(n);
        let test = NodeTest::tag("a");
        g.bench_function(format!("{family}-n{n}-tree"), |b| {
            b.iter(|| {
                let hits = tree
                    .axis(Axis::Descendant)
                    .into_iter()
                    .filter(|t| test.matches(t.label()))
                    .count();
                black_box(hits)
            })
        });
        g.bench_function(format!("{family}-n{n}-arena"), |b| {
            b.iter(|| black_box(arena.axis(arena.root(), Axis::Descendant, &test).len()))
        });
    }
    g.finish();
}

fn bench_full_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena_vs_rc/stream-query");
    g.sample_size(10);
    let q = parse_query("for $x in $root//a return <w>{ $x/* }</w>").unwrap();
    let tree: Tree = DoublingFamily::Binary.tree(7);
    let arena = DoublingFamily::Binary.arena(7);
    g.bench_function("binary-n7-tree", |b| {
        b.iter(|| {
            black_box(
                xq_stream::stream_query_buffered(
                    &q,
                    &tree,
                    u64::MAX,
                    xq_stream::DEFAULT_BUFFER_LIMIT,
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("binary-n7-arena", |b| {
        b.iter(|| {
            black_box(
                xq_stream::stream_query_arena(
                    &q,
                    &arena,
                    u64::MAX,
                    xq_stream::DEFAULT_BUFFER_LIMIT,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_parse,
    bench_axis_scan,
    bench_full_query
);
criterion_main!(benches);
