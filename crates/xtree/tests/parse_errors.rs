//! Negative-parse coverage for `cv_xtree::parse` across both document
//! representations: mismatched tags, truncated input, stray text, and
//! malformed tags must fail with *stable*, *identical* error messages
//! whether parsed into the `Rc` [`Tree`] or directly into the
//! [`ArenaDoc`]. The expected strings are pinned here so an accidental
//! wording or offset change fails readably.

use cv_xtree::{parse_tree, ArenaDoc};

/// (input, expected `XmlError` display) — the stable error contract.
const CASES: &[(&str, &str)] = &[
    // Mismatched tags.
    (
        "<a></b>",
        "XML error at 1: mismatched tags: <a> closed by </b>",
    ),
    (
        "<a><b></a></b>",
        "XML error at 2: mismatched tags: <b> closed by </a>",
    ),
    // Truncated input.
    ("<a>", "XML error at 1: unclosed tag <a>"),
    ("<a><b/>", "XML error at 3: unclosed tag <a>"),
    ("<a", "XML error at 2: expected '>'"),
    ("<a/", "XML error at 3: expected '>'"),
    ("<", "XML error at 1: expected a tag name"),
    // Unmatched close.
    ("</a>", "XML error at 0: unmatched closing tag </a>"),
    ("<a/></a>", "XML error at 2: unmatched closing tag </a>"),
    // Stray text content.
    (
        "<a>text</a>",
        "XML error at 3: expected '<' (text content is not supported)",
    ),
    (
        "x<a/>",
        "XML error at 0: expected '<' (text content is not supported)",
    ),
    // Malformed tag names.
    ("< a/>", "XML error at 1: expected a tag name"),
    ("<a b/>", "XML error at 2: expected '>'"),
    // Root-count violations (single-document parses).
    (
        "",
        "XML error at 0: expected exactly one root element, found 0",
    ),
    (
        "<a/><b/>",
        "XML error at 0: expected exactly one root element, found 2",
    ),
];

#[test]
fn error_messages_are_stable_and_identical_across_representations() {
    for (src, want) in CASES {
        let tree_err = parse_tree(src).expect_err(src);
        let arena_err = ArenaDoc::parse(src).expect_err(src);
        assert_eq!(tree_err, arena_err, "representations disagree on {src:?}");
        assert_eq!(&tree_err.to_string(), want, "message drifted for {src:?}");
    }
}

#[test]
fn errors_do_not_depend_on_surrounding_whitespace() {
    for (src, padded) in [("<a></b>", " <a></b>"), ("</a>", "\n</a>")] {
        let plain = ArenaDoc::parse(src).unwrap_err();
        let spaced = ArenaDoc::parse(padded).unwrap_err();
        assert_eq!(plain.message, spaced.message, "message for {padded:?}");
    }
}

#[test]
fn good_documents_still_parse_on_both_paths() {
    for src in ["<a/>", "<a><b/><c><d/></c></a>", "<x-1.2/>"] {
        assert_eq!(
            ArenaDoc::parse(src).unwrap().to_tree(),
            parse_tree(src).unwrap()
        );
    }
}
