//! T18: the bytecode VM and plan cache against the Figure 1 interpreter.
//!
//! Three costs on the hot service query, one fixed-seed document:
//!
//! * per-evaluation latency — pre-parsed interpreter vs compiled plan
//!   (the pure engine delta, `vm_diff` proves them identical);
//! * the per-request front end the cache removes — parse + eval vs a
//!   warm `PlanCache` hit + exec;
//! * the one-time costs the cache amortizes — parse, compile, and a
//!   cold `get_or_compile`.

use criterion::{criterion_group, criterion_main, Criterion};
use cv_xtree::{random_tree, TreeGen};
use xq_core::vm::{compile_query, exec_with, PlanCache};
use xq_core::{eval_with, parse_query, Budget, Env};

const QUERY: &str = "for $x in $root//a return <w>{ $x/* }</w>";

fn bench_engines(c: &mut Criterion) {
    let q = parse_query(QUERY).unwrap();
    let plan = compile_query(&q);
    let mut g = TreeGen::new(7);
    let doc = random_tree(&mut g, 200, &["a", "b", "k"]);
    let env = Env::with_root(doc);
    let budget = Budget::default();

    let mut group = c.benchmark_group("vm_vs_interp");
    group.sample_size(30);
    group.bench_function("interp_eval", |b| {
        b.iter(|| eval_with(&q, &env, budget.clone()).unwrap())
    });
    group.bench_function("vm_exec", |b| {
        b.iter(|| exec_with(&plan, &env, budget.clone()).unwrap())
    });
    group.bench_function("interp_parse_then_eval", |b| {
        b.iter(|| {
            let q = parse_query(QUERY).unwrap();
            eval_with(&q, &env, budget.clone()).unwrap()
        })
    });
    let cache = PlanCache::new();
    cache.get_or_compile(QUERY).unwrap();
    group.bench_function("vm_warm_cache_then_exec", |b| {
        b.iter(|| {
            let plan = cache.get_or_compile(QUERY).unwrap();
            exec_with(&plan, &env, budget.clone()).unwrap()
        })
    });
    group.bench_function("parse", |b| b.iter(|| parse_query(QUERY).unwrap()));
    group.bench_function("compile", |b| b.iter(|| compile_query(&q)));
    group.bench_function("cold_get_or_compile", |b| {
        b.iter(|| PlanCache::new().get_or_compile(QUERY).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
