//! Graph 3-colorability and the Proposition 7.7 reduction to negation-free
//! composition-free Core XQuery (NP-hardness).
//!
//! Note the paper's query uses `not $x =atomic $y` *inside conditions* —
//! inequality of atomic values. That is the standard reading of the
//! conjunctive-query lower bound: the *query language* operators stay
//! positive (no `not` around subqueries), while atomic ≠ is available.
//! We follow the paper's query verbatim.

use cv_xtree::Tree;
use xq_core::ast::{Cond, EqMode, Query, Var};

/// An undirected graph on vertices `0..n`.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub vertices: usize,
    /// Edges as vertex pairs.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Brute-force 3-colorability (the oracle).
    pub fn is_3_colorable(&self) -> bool {
        fn go(g: &Graph, colors: &mut Vec<u8>) -> bool {
            let v = colors.len();
            if v == g.vertices {
                return true;
            }
            'c: for c in 0..3u8 {
                for &(a, b) in &g.edges {
                    let (lo, hi) = (a.min(b), a.max(b));
                    if hi == v && colors[lo] == c {
                        continue 'c;
                    }
                }
                colors.push(c);
                if go(g, colors) {
                    return true;
                }
                colors.pop();
            }
            false
        }
        go(self, &mut Vec::new())
    }
}

/// The fixed data tree: a root with three children `red`, `green`, `blue`.
pub fn color_tree() -> Tree {
    Tree::node(
        "r",
        [Tree::leaf("red"), Tree::leaf("green"), Tree::leaf("blue")],
    )
}

fn var_name(i: usize) -> Var {
    Var::new(format!("x{i}"))
}

/// The Proposition 7.7 reduction:
///
/// ```text
/// ⟨result⟩{ for $x1 in $root/* return … for $xm in $root/* return
///   if ((not $xi =atomic $xj) and …) then ⟨yes/⟩ }⟨/result⟩
/// ```
pub fn three_col_query(g: &Graph) -> Query {
    let mut cond: Option<Cond> = None;
    for &(a, b) in &g.edges {
        let ne = Cond::VarEq(var_name(a), var_name(b), EqMode::Atomic).negate();
        cond = Some(match cond {
            None => ne,
            Some(c) => c.and(ne),
        });
    }
    let cond = cond.unwrap_or(Cond::True);
    let mut body = Query::if_then(cond, Query::leaf("yes"));
    for i in (0..g.vertices).rev() {
        body = Query::for_in(var_name(i), Query::child_any(Query::var("root")), body);
    }
    Query::elem("result", body)
}

/// Deterministic pseudo-random graphs for test fleets.
pub fn random_graph(gen: &mut cv_xtree::TreeGen, vertices: usize, edges: usize) -> Graph {
    let mut es = Vec::new();
    let mut guard = 0;
    while es.len() < edges && guard < 100 * edges {
        guard += 1;
        let a = gen.below(vertices);
        let b = gen.below(vertices);
        if a != b && !es.contains(&(a.min(b), a.max(b))) {
            es.push((a.min(b), a.max(b)));
        }
    }
    Graph {
        vertices,
        edges: es,
    }
}

/// `K4` — the smallest non-3-colorable graph.
pub fn k4() -> Graph {
    Graph {
        vertices: 4,
        edges: vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
    }
}

/// An odd cycle `C5` — 3-colorable but not 2-colorable.
pub fn c5() -> Graph {
    Graph {
        vertices: 5,
        edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xq_core::{boolean_result, is_composition_free};

    #[test]
    fn oracle_classics() {
        assert!(!k4().is_3_colorable());
        assert!(c5().is_3_colorable());
        assert!(Graph {
            vertices: 3,
            edges: vec![(0, 1), (1, 2), (0, 2)]
        }
        .is_3_colorable());
        assert!(Graph {
            vertices: 1,
            edges: vec![]
        }
        .is_3_colorable());
    }

    #[test]
    fn reduction_is_composition_free_without_query_negation() {
        let q = three_col_query(&k4());
        assert!(is_composition_free(&q), "{q}");
    }

    #[test]
    fn reduction_matches_oracle_on_classics() {
        let t = color_tree();
        assert!(!boolean_result(&three_col_query(&k4()), &t).unwrap());
        assert!(boolean_result(&three_col_query(&c5()), &t).unwrap());
    }

    #[test]
    fn reduction_matches_oracle_on_a_fleet() {
        let mut gen = cv_xtree::TreeGen::new(42);
        let t = color_tree();
        let (mut yes, mut no) = (0, 0);
        for v in 3..=5 {
            for e in [v, v + 2, v * (v - 1) / 2] {
                let g = random_graph(&mut gen, v, e);
                let want = g.is_3_colorable();
                let got = boolean_result(&three_col_query(&g), &t).unwrap();
                assert_eq!(got, want, "graph {g:?}");
                if want {
                    yes += 1
                } else {
                    no += 1
                }
            }
        }
        assert!(yes > 0 && no > 0, "fleet covers both outcomes");
    }

    #[test]
    fn query_size_is_linear_in_graph_size() {
        let small = three_col_query(&random_graph(&mut cv_xtree::TreeGen::new(1), 4, 4)).size();
        let big = three_col_query(&random_graph(&mut cv_xtree::TreeGen::new(1), 12, 12)).size();
        assert!(big < 10 * small);
    }
}
