//! An arena ("DOM") representation of a tree, with stable node identities.
//!
//! Composition-free XQuery variables range exclusively over nodes of the
//! input tree (Prop 7.3); the nested-loop evaluator therefore only ever
//! stores [`NodeId`]s — each a single machine word, giving the paper's
//! `O(|Q| · log |t|)` space bound.

use crate::{Axis, Label, NodeTest, Tree};

/// Identifier of a node within a [`Document`]. Ids are assigned in preorder
/// (document order), so comparing ids compares document order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

struct NodeData {
    label: Label,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Preorder index of the first node *after* this subtree; the subtree of
    /// node `v` is exactly the id range `v.0 .. subtree_end`.
    subtree_end: u32,
}

/// An immutable node arena built from a [`Tree`].
pub struct Document {
    nodes: Vec<NodeData>,
}

impl Document {
    /// Builds the arena for `tree`; the root receives id 0.
    pub fn new(tree: &Tree) -> Document {
        let mut doc = Document { nodes: Vec::new() };
        doc.add(tree, None);
        doc
    }

    fn add(&mut self, t: &Tree, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: t.label().clone(),
            parent,
            children: Vec::with_capacity(t.children().len()),
            subtree_end: 0,
        });
        for c in t.children() {
            let cid = self.add(c, Some(id));
            self.nodes[id.0 as usize].children.push(cid);
        }
        self.nodes[id.0 as usize].subtree_end = self.nodes.len() as u32;
        id
    }

    /// The root node (always id 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the document has no nodes (never the case for `Document::new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    /// The label of `id`.
    pub fn label(&self, id: NodeId) -> &Label {
        &self.data(id).label
    }

    /// The parent of `id`, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// The children of `id` in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.data(id).children
    }

    /// Whether `id` is a leaf.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.data(id).children.is_empty()
    }

    /// Proper descendants of `id` in document order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let end = self.data(id).subtree_end;
        (id.0 + 1..end).map(NodeId)
    }

    /// Whether `desc` lies in the subtree rooted at `anc` (inclusive).
    pub fn is_in_subtree(&self, anc: NodeId, desc: NodeId) -> bool {
        anc.0 <= desc.0 && desc.0 < self.data(anc).subtree_end
    }

    /// The nodes reached from `id` via `axis` whose labels pass `test`,
    /// in document order.
    pub fn axis(&self, id: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        let mut out = Vec::new();
        match axis {
            Axis::Child => {
                out.extend(
                    self.children(id)
                        .iter()
                        .copied()
                        .filter(|&c| test.matches(self.label(c))),
                );
            }
            Axis::Descendant => {
                out.extend(
                    self.descendants(id)
                        .filter(|&c| test.matches(self.label(c))),
                );
            }
            Axis::SelfAxis => {
                if test.matches(self.label(id)) {
                    out.push(id);
                }
            }
            Axis::DescendantOrSelf => {
                if test.matches(self.label(id)) {
                    out.push(id);
                }
                out.extend(
                    self.descendants(id)
                        .filter(|&c| test.matches(self.label(c))),
                );
            }
        }
        out
    }

    /// Materializes the subtree rooted at `id` as a [`Tree`].
    pub fn subtree(&self, id: NodeId) -> Tree {
        Tree::node(
            self.label(id).clone(),
            self.children(id).iter().map(|&c| self.subtree(c)),
        )
    }

    /// Deep (value) equality of the subtrees rooted at `a` and `b` —
    /// label-and-structure equality, without materializing.
    pub fn deep_eq(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        if self.label(a) != self.label(b) {
            return false;
        }
        let (ca, cb) = (self.children(a), self.children(b));
        ca.len() == cb.len() && ca.iter().zip(cb).all(|(&x, &y)| self.deep_eq(x, y))
    }

    /// Atomic equality: both nodes must be leaves; compares labels.
    /// Returns `None` when either node is not a leaf (the comparison is
    /// undefined, matching `=atomic` being a partial operation).
    pub fn atomic_eq(&self, a: NodeId, b: NodeId) -> Option<bool> {
        if self.is_leaf(a) && self.is_leaf(b) {
            Some(self.label(a) == self.label(b))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // <r><a><b/><b/></a><a/><c><a><b/></a></c></r>
        Tree::node(
            "r",
            [
                Tree::node("a", [Tree::leaf("b"), Tree::leaf("b")]),
                Tree::leaf("a"),
                Tree::node("c", [Tree::node("a", [Tree::leaf("b")])]),
            ],
        )
    }

    #[test]
    fn ids_are_preorder() {
        let t = sample();
        let d = Document::new(&t);
        assert_eq!(d.len(), 8);
        assert_eq!(d.label(NodeId(0)).as_str(), "r");
        assert_eq!(d.label(NodeId(1)).as_str(), "a");
        assert_eq!(d.label(NodeId(2)).as_str(), "b");
        assert_eq!(d.label(NodeId(3)).as_str(), "b");
        assert_eq!(d.label(NodeId(4)).as_str(), "a");
        assert_eq!(d.label(NodeId(5)).as_str(), "c");
        assert_eq!(d.label(NodeId(6)).as_str(), "a");
        assert_eq!(d.label(NodeId(7)).as_str(), "b");
    }

    #[test]
    fn parent_child_links() {
        let d = Document::new(&sample());
        assert_eq!(d.parent(d.root()), None);
        assert_eq!(d.children(d.root()), &[NodeId(1), NodeId(4), NodeId(5)]);
        assert_eq!(d.parent(NodeId(7)), Some(NodeId(6)));
        assert!(d.is_leaf(NodeId(4)));
        assert!(!d.is_leaf(NodeId(1)));
    }

    #[test]
    fn descendant_ranges() {
        let d = Document::new(&sample());
        let desc: Vec<u32> = d.descendants(NodeId(1)).map(|n| n.0).collect();
        assert_eq!(desc, vec![2, 3]);
        assert!(d.is_in_subtree(NodeId(5), NodeId(7)));
        assert!(!d.is_in_subtree(NodeId(1), NodeId(4)));
        assert!(d.is_in_subtree(NodeId(0), NodeId(7)));
    }

    #[test]
    fn axis_with_node_tests() {
        let d = Document::new(&sample());
        let a = NodeTest::tag("a");
        assert_eq!(
            d.axis(d.root(), Axis::Child, &a),
            vec![NodeId(1), NodeId(4)]
        );
        assert_eq!(
            d.axis(d.root(), Axis::Descendant, &a),
            vec![NodeId(1), NodeId(4), NodeId(6)]
        );
        assert_eq!(d.axis(NodeId(1), Axis::SelfAxis, &a), vec![NodeId(1)]);
        assert_eq!(
            d.axis(NodeId(1), Axis::SelfAxis, &NodeTest::tag("z")),
            vec![]
        );
        assert_eq!(
            d.axis(NodeId(5), Axis::DescendantOrSelf, &NodeTest::Wildcard),
            vec![NodeId(5), NodeId(6), NodeId(7)]
        );
    }

    #[test]
    fn subtree_round_trip() {
        let t = sample();
        let d = Document::new(&t);
        assert_eq!(d.subtree(d.root()), t);
        assert_eq!(d.subtree(NodeId(6)), Tree::node("a", [Tree::leaf("b")]));
    }

    #[test]
    fn equalities() {
        let d = Document::new(&sample());
        // Two <b/> leaves under node 1 are deep- and atomically equal.
        assert!(d.deep_eq(NodeId(2), NodeId(3)));
        assert_eq!(d.atomic_eq(NodeId(2), NodeId(3)), Some(true));
        // <a><b/><b/></a> vs <a/> differ deeply; atomic eq undefined.
        assert!(!d.deep_eq(NodeId(1), NodeId(4)));
        assert_eq!(d.atomic_eq(NodeId(1), NodeId(4)), None);
        // <a><b/></a> under c vs <a><b/><b/></a>: unequal child counts.
        assert!(!d.deep_eq(NodeId(1), NodeId(6)));
    }
}
