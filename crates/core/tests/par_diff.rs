//! The parallel differential suite: random XQ∼ queries (biased toward the
//! outer-`for` shape the data-parallel evaluators distribute) must yield
//! **byte-identical** results sequentially and at 1/2/4/8 worker threads,
//! on both parallel engines:
//!
//! * `xq_core::par::eval_query_par` vs the Figure 1 reference semantics;
//! * `xq_stream::stream_query_arena_par` vs `stream_query_arena`,
//!   token-for-token, at the default buffer cap *and* with a tiny cap
//!   forcing the lazy discipline inside the workers.
//!
//! Determinism is the whole contract of `xq_core::par` (the chunk merge
//! preserves document order; errors resolve in chunk order), so the suite
//! runs every query at every thread count — including thread counts far
//! above this machine's core count, which exercises the chunking edge
//! cases (more workers than items, empty remainders).
//!
//! The corpus is cached per thread and the case count honours
//! `XQ_RANDOM_CASES` (CI pins 16; local default 64). `XQ_THREADS` adds an
//! extra thread count to the sweep, so CI's `XQ_THREADS=4` run is explicit
//! about the configuration it covers. The `#[ignore]`d full-size variant
//! (weekly `scheduled.yml` run) sweeps bigger documents plus the three
//! doubling families.

use cv_xtree::{random_tree, ArenaDoc, Axis, DoublingFamily, NodeTest, Tree, TreeGen};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xq_core::ast::{Cond, EqMode, Query, Var};
use xq_core::{eval_query_par, Budget, Threads};

/// Variables in scope are `$root` plus loop variables `v0..v{depth}`.
fn var_in_scope(depth: usize) -> impl Strategy<Value = Var> {
    (0..=depth).prop_map(|i| {
        if i == 0 {
            Var::root()
        } else {
            Var::new(format!("v{}", i - 1))
        }
    })
}

fn node_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::Wildcard),
        Just(NodeTest::tag("a")),
        Just(NodeTest::tag("b")),
    ]
}

fn axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        3 => Just(Axis::Child),
        1 => Just(Axis::Descendant),
        1 => Just(Axis::DescendantOrSelf),
        1 => Just(Axis::SelfAxis),
    ]
}

/// A step on an in-scope variable.
fn var_step(depth: usize) -> impl Strategy<Value = Query> {
    (var_in_scope(depth), axis(), node_test())
        .prop_map(|(v, ax, nt)| Query::step(Query::Var(v), ax, nt))
}

/// A chain of up to three steps grounded at `$root` — the source shape
/// `resolve_node_source` parallelizes.
fn root_step_chain() -> impl Strategy<Value = Query> {
    proptest::collection::vec((axis(), node_test()), 1..=3).prop_map(|steps| {
        steps
            .into_iter()
            .fold(Query::Var(Var::root()), |q, (ax, nt)| {
                Query::step(q, ax, nt)
            })
    })
}

/// Random XQ∼ queries with `depth` loop variables in scope — the
/// `random_queries.rs` grammar (see the NOTE there about deliberate
/// duplication), reused here as loop bodies and fallback shapes.
fn xq_tilde(depth: usize, size: u32) -> BoxedStrategy<Query> {
    if size == 0 {
        return prop_oneof![
            Just(Query::Empty),
            Just(Query::leaf("k")),
            var_in_scope(depth).prop_map(Query::Var),
            var_step(depth),
        ]
        .boxed();
    }
    let d = depth;
    prop_oneof![
        2 => var_step(d),
        2 => (prop_oneof![Just("w"), Just("x")], xq_tilde(d, size - 1))
            .prop_map(|(t, b)| Query::elem(t, b)),
        2 => (xq_tilde(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(a, b)| Query::seq([a, b])),
        3 => (var_step(d), xq_tilde(d + 1, size - 1)).prop_map(move |(s, b)| {
            Query::for_in(format!("v{d}").as_str(), s, b)
        }),
        2 => (cond(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(c, b)| Query::if_then(c, b)),
        1 => var_in_scope(d).prop_map(Query::Var),
    ]
    .boxed()
}

fn cond(depth: usize, size: u32) -> BoxedStrategy<Cond> {
    let base =
        prop_oneof![
            (var_in_scope(depth), var_in_scope(depth), eq_mode())
                .prop_map(|(x, y, m)| Cond::VarEq(x, y, m)),
            (var_in_scope(depth), prop_oneof![Just("a"), Just("k")])
                .prop_map(|(x, t)| Cond::ConstEq(x, t.into(), EqMode::Atomic)),
        ];
    if size == 0 {
        return base.boxed();
    }
    prop_oneof![
        2 => base,
        2 => xq_tilde(depth, size.min(1)).prop_map(Cond::query),
        1 => cond(depth, size - 1).prop_map(Cond::negate),
    ]
    .boxed()
}

fn eq_mode() -> impl Strategy<Value = EqMode> {
    prop_oneof![Just(EqMode::Deep), Just(EqMode::Atomic)]
}

/// The query corpus: mostly parallelizable shapes (an outer `for` over a
/// `$root` step chain, possibly element-wrapped), plus raw XQ∼ queries to
/// cover the sequential fallback.
fn par_query() -> BoxedStrategy<Query> {
    // Built twice rather than cloned: the vendored proptest stub's
    // strategies are not `Clone`.
    let outer_for = || {
        (root_step_chain(), xq_tilde(1, 2))
            .prop_map(|(source, body)| Query::for_in("v0", source, body))
    };
    prop_oneof![
        3 => outer_for(),
        2 => outer_for().prop_map(|q| Query::elem("out", q)),
        2 => xq_tilde(0, 3),
    ]
    .boxed()
}

/// The cached per-thread corpus — the `random_queries.rs` documents.
fn docs() -> Vec<Tree> {
    thread_local! {
        static DOCS: Vec<Tree> = (0..3u64)
            .map(|seed| {
                let mut g = TreeGen::new(seed);
                random_tree(&mut g, 10, &["a", "b", "k"])
            })
            .collect();
    }
    DOCS.with(|d| d.clone())
}

/// Cases per property: `XQ_RANDOM_CASES` if set (CI uses 16), else 64.
fn cases() -> u32 {
    std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Thread counts under test: 1/2/4/8 always, plus whatever `XQ_THREADS`
/// resolves to (CI's parallel job sets it to 4).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    let env = Threads::from_env().count();
    if !counts.contains(&env) {
        counts.push(env);
    }
    counts
}

/// Serializes a result list to bytes.
fn bytes(trees: &[Tree]) -> Vec<u8> {
    trees
        .iter()
        .map(Tree::to_xml)
        .collect::<String>()
        .into_bytes()
}

const FUEL: u64 = 50_000_000;

/// The differential body shared by the quick and full-size suites.
///
/// The contract mirrors the `xq_core::par` budget semantics: when the
/// sequential run succeeds, the parallel result must be byte-identical
/// (and parallel must not fail — each worker's chunk is a subset of the
/// sequential work); when the sequential run exhausts its budget, the
/// parallel run may either exhaust its own or legitimately succeed (each
/// worker gets the full budget for less work). Non-budget errors must
/// match exactly.
fn assert_par_agrees(q: &Query, doc: &Tree) -> Result<(), TestCaseError> {
    let arena = ArenaDoc::from_tree(doc);

    // Materializing engine: reference vs eval_query_par at every count.
    let want = match xq_core::eval_query(q, doc) {
        Ok(out) => Ok(bytes(&out)),
        Err(e) => Err(e),
    };
    for threads in thread_counts() {
        let budget = Budget::default().with_threads(Threads::N(threads));
        let got = eval_query_par(q, &arena, budget).map(|(out, _)| bytes(&out));
        match (&want, &got) {
            (Err(xq_core::XqError::Budget { .. }), Ok(_)) => {} // monotone: allowed
            _ => prop_assert_eq!(&got, &want, "eval {} at {} threads on {}", q, threads, doc),
        }
    }

    // Streaming engine: sequential arena stream vs the parallel one.
    let stream_want =
        xq_stream::stream_query_arena(q, &arena, FUEL, xq_stream::DEFAULT_BUFFER_LIMIT)
            .map(|(tokens, _)| tokens);
    for threads in thread_counts() {
        let got = xq_stream::stream_query_arena_par(
            q,
            &arena,
            FUEL,
            xq_stream::DEFAULT_BUFFER_LIMIT,
            threads,
        )
        .map(|(tokens, _)| tokens);
        match (&stream_want, &got) {
            (Err(xq_stream::StreamError::Budget), Ok(_)) => {} // monotone: allowed
            _ => prop_assert_eq!(
                &got,
                &stream_want,
                "stream {} at {} threads on {}",
                q,
                threads,
                doc
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Parallel and sequential evaluation are byte-identical at 1/2/4/8
    /// threads on the cached corpus, for both engines.
    #[test]
    fn parallel_results_are_byte_identical(q in par_query()) {
        for doc in &docs() {
            assert_par_agrees(&q, doc)?;
        }
    }
}

proptest! {
    // The weekly full-size pass: bigger random documents plus the three
    // doubling families at n = 6, 128 cases. Run explicitly with
    // `cargo test --release -p xq_core -- --ignored` (scheduled.yml does).
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    #[ignore = "full-size parallel differential pass; runs in the weekly scheduled workflow"]
    fn parallel_results_are_byte_identical_full_size(q in par_query()) {
        let mut full: Vec<Tree> = (0..2u64)
            .map(|seed| {
                let mut g = TreeGen::new(seed);
                random_tree(&mut g, 64, &["a", "b", "k"])
            })
            .collect();
        full.extend(DoublingFamily::ALL.iter().map(|f| f.tree(6)));
        for doc in &full {
            assert_par_agrees(&q, doc)?;
        }
    }
}

/// The service path agrees with direct evaluation under concurrency: one
/// pool, many requests, order-preserving results.
#[test]
fn query_service_agrees_with_reference() {
    use std::sync::Arc;
    let corpus = docs();
    let arenas: Vec<Arc<ArenaDoc>> = corpus
        .iter()
        .map(|t| Arc::new(ArenaDoc::from_tree(t)))
        .collect();
    let queries = [
        "for $x in $root//a return <w>{ $x/* }</w>",
        "<out>{ for $x in $root/* return if ($x =atomic <k/>) then $x }</out>",
        "$root/*",
    ];
    let mut service = xq_core::QueryService::new(4);
    let requests: Vec<xq_core::Request> = arenas
        .iter()
        .flat_map(|d| queries.iter().map(|q| xq_core::Request::new(q, d.clone())))
        .collect();
    let got = service.run_batch(requests.clone());
    for (i, r) in requests.iter().enumerate() {
        let q = xq_core::parse_query(&r.query).unwrap();
        let want: String = xq_core::eval_query(&q, &r.doc.to_tree())
            .unwrap()
            .iter()
            .map(Tree::to_xml)
            .collect();
        assert_eq!(got[i].as_ref().unwrap(), &want, "request {i}");
    }
}
