//! The arena differential suite: random XQ∼ queries (the
//! `crates/core/tests/random_queries.rs` corpus shape) evaluated over
//! arena-backed and `Rc`-backed documents must yield **byte-identical**
//! results, on every engine the arena touches:
//!
//! * the Figure 1 reference semantics on the `Rc` tree vs the same tree
//!   routed `Tree → ArenaDoc → Tree` (the `XQ_ARENA` load path), and vs
//!   the parse route `to_xml → ArenaDoc::parse → to_tree`;
//! * the streaming engine on the `Rc` tree vs `stream_query_arena` pulling
//!   tokens straight out of the arena vectors.
//!
//! The per-thread `docs()` corpus is cached exactly like the
//! `random_queries.rs` one, and the case count honours `XQ_RANDOM_CASES`
//! (CI pins 16; local default 64). The `#[ignore]`d full-size variant
//! (weekly `scheduled.yml` run) sweeps bigger documents and the three
//! doubling families.

use cv_xtree::{random_tree, ArenaDoc, Axis, DoublingFamily, NodeTest, Tree, TreeGen};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xq_core::ast::{Cond, EqMode, Query, Var};

/// Variables in scope are `$root` plus loop variables `v0..v{depth}`.
fn var_in_scope(depth: usize) -> impl Strategy<Value = Var> {
    (0..=depth).prop_map(|i| {
        if i == 0 {
            Var::root()
        } else {
            Var::new(format!("v{}", i - 1))
        }
    })
}

fn node_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::Wildcard),
        Just(NodeTest::tag("a")),
        Just(NodeTest::tag("b")),
    ]
}

fn axis() -> impl Strategy<Value = Axis> {
    prop_oneof![
        3 => Just(Axis::Child),
        1 => Just(Axis::Descendant),
        1 => Just(Axis::DescendantOrSelf),
        1 => Just(Axis::SelfAxis),
    ]
}

/// A step on an in-scope variable.
fn var_step(depth: usize) -> impl Strategy<Value = Query> {
    (var_in_scope(depth), axis(), node_test())
        .prop_map(|(v, ax, nt)| Query::step(Query::Var(v), ax, nt))
}

/// Random XQ∼ queries with `depth` loop variables in scope — the same
/// grammar the `random_queries.rs` suites draw from.
///
/// NOTE: deliberately duplicated from `crates/core/tests/random_queries.rs`
/// (a shared test-support module would put the generator on `xq_core`'s
/// public surface). If you extend the grammar there, mirror it here — the
/// reverse pointer comment sits on that file's `xq_tilde`.
fn xq_tilde(depth: usize, size: u32) -> BoxedStrategy<Query> {
    if size == 0 {
        return prop_oneof![
            Just(Query::Empty),
            Just(Query::leaf("k")),
            var_in_scope(depth).prop_map(Query::Var),
            var_step(depth),
        ]
        .boxed();
    }
    let d = depth;
    prop_oneof![
        2 => var_step(d),
        2 => (prop_oneof![Just("w"), Just("x")], xq_tilde(d, size - 1))
            .prop_map(|(t, b)| Query::elem(t, b)),
        2 => (xq_tilde(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(a, b)| Query::seq([a, b])),
        3 => (var_step(d), xq_tilde(d + 1, size - 1)).prop_map(move |(s, b)| {
            Query::for_in(format!("v{d}").as_str(), s, b)
        }),
        2 => (cond(d, size - 1), xq_tilde(d, size - 1))
            .prop_map(|(c, b)| Query::if_then(c, b)),
        1 => var_in_scope(d).prop_map(Query::Var),
    ]
    .boxed()
}

fn cond(depth: usize, size: u32) -> BoxedStrategy<Cond> {
    let base =
        prop_oneof![
            (var_in_scope(depth), var_in_scope(depth), eq_mode())
                .prop_map(|(x, y, m)| Cond::VarEq(x, y, m)),
            (var_in_scope(depth), prop_oneof![Just("a"), Just("k")])
                .prop_map(|(x, t)| Cond::ConstEq(x, t.into(), EqMode::Atomic)),
        ];
    if size == 0 {
        return base.boxed();
    }
    prop_oneof![
        2 => base,
        2 => xq_tilde(depth, size.min(1)).prop_map(Cond::query),
        1 => cond(depth, size - 1).prop_map(Cond::negate),
    ]
    .boxed()
}

fn eq_mode() -> impl Strategy<Value = EqMode> {
    prop_oneof![Just(EqMode::Deep), Just(EqMode::Atomic)]
}

/// The cached per-thread corpus — the `random_queries.rs` documents.
fn docs() -> Vec<Tree> {
    thread_local! {
        static DOCS: Vec<Tree> = (0..3u64)
            .map(|seed| {
                let mut g = TreeGen::new(seed);
                random_tree(&mut g, 10, &["a", "b", "k"])
            })
            .collect();
    }
    DOCS.with(|d| d.clone())
}

/// Cases per property: `XQ_RANDOM_CASES` if set (CI uses 16), else 64.
fn cases() -> u32 {
    std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Serializes a reference-semantics result list to bytes.
fn result_bytes(q: &Query, doc: &Tree) -> Vec<u8> {
    xq_core::eval_query(q, doc)
        .unwrap()
        .iter()
        .map(Tree::to_xml)
        .collect::<String>()
        .into_bytes()
}

/// The differential body shared by the quick and full-size suites.
fn assert_arena_agrees(q: &Query, doc: &Tree) -> Result<(), TestCaseError> {
    let arena = ArenaDoc::from_tree(doc);
    let want = result_bytes(q, doc);

    // Reference semantics over the two arena load routes.
    let via_roundtrip = arena.to_tree();
    prop_assert_eq!(
        &result_bytes(q, &via_roundtrip),
        &want,
        "roundtrip route: {} on {}",
        q,
        doc
    );
    let via_parse = ArenaDoc::parse(&doc.to_xml()).unwrap().to_tree();
    prop_assert_eq!(
        &result_bytes(q, &via_parse),
        &want,
        "parse route: {} on {}",
        q,
        doc
    );

    // Streaming: Rc-tree source vs arena source, token-for-token.
    const FUEL: u64 = 50_000_000;
    let (stream_want, _) =
        xq_stream::stream_query_buffered(q, doc, FUEL, xq_stream::DEFAULT_BUFFER_LIMIT)
            .unwrap_or_else(|e| panic!("{q}: {e}"));
    let (stream_got, _) =
        xq_stream::stream_query_arena(q, &arena, FUEL, xq_stream::DEFAULT_BUFFER_LIMIT)
            .unwrap_or_else(|e| panic!("arena {q}: {e}"));
    prop_assert_eq!(&stream_got, &stream_want, "streaming: {} on {}", q, doc);

    // And the streamed tokens match the reference bytes once serialized
    // (through the tested `Tree` serializer — no hand-rolled renderer).
    let stream_xml: Vec<u8> = Tree::forest_from_tokens(&stream_got)
        .unwrap()
        .iter()
        .map(Tree::to_xml)
        .collect::<String>()
        .into_bytes();
    prop_assert_eq!(&stream_xml, &want, "stream vs reference: {} on {}", q, doc);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arena and Rc documents are observationally identical under random
    /// queries, on the cached corpus.
    #[test]
    fn arena_and_rc_results_are_byte_identical(q in xq_tilde(0, 3)) {
        for doc in &docs() {
            assert_arena_agrees(&q, doc)?;
        }
    }
}

proptest! {
    // The weekly full-size pass: bigger random documents plus the three
    // doubling families at n = 6, 128 cases. Run explicitly with
    // `cargo test --release -p cv_xtree -- --ignored` (scheduled.yml does).
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    #[ignore = "full-size differential pass; runs in the weekly scheduled workflow"]
    fn arena_and_rc_results_are_byte_identical_full_size(q in xq_tilde(0, 3)) {
        let mut full: Vec<Tree> = (0..2u64)
            .map(|seed| {
                let mut g = TreeGen::new(seed);
                random_tree(&mut g, 64, &["a", "b", "k"])
            })
            .collect();
        full.extend(DoublingFamily::ALL.iter().map(|f| f.tree(6)));
        for doc in &full {
            assert_arena_agrees(&q, doc)?;
        }
    }
}
