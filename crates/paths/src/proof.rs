//! Proof trees for path membership — the certificate structure behind the
//! Theorem 5.2 NEXPTIME upper bound (Figure 6).
//!
//! To decide a Boolean query the nondeterministic algorithm guesses a path
//! `p` and checks `p ∈ [[v ∘ Q]]({1.⟨⟩})` by recursion: each Figure 4 rule
//! needs at most *two* premise paths ("only for `pairwith` and `=atomic`
//! the computation branches out"), so the check is a binary tree of depth
//! `O(|v| + |Q|)` whose paths grow only by concatenation — hence
//! polynomial-size certificates and an exponential-time nondeterministic
//! procedure.
//!
//! This module constructs the proof tree *deterministically*: the forward
//! path sets resolve the existential guesses. [`ProofStats`] measure the
//! quantities the theorem bounds.

use crate::semantics::{map_b, step, PathBudget, PathError, PathSet};
use crate::Term;
use cv_monad::{Cond, EqMode, Expr, Operand};

/// A node of a proof tree: an operation applied at a path, justified by
/// its children's paths (Figure 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofNode {
    /// Display name of the justifying operation (`"flatten"`, `"map_b"`,
    /// `"A =atomic B"`, or `"input"` for the axioms).
    pub op: String,
    /// The path whose membership this node certifies.
    pub path: Term,
    /// Premises.
    pub children: Vec<ProofNode>,
}

impl ProofNode {
    fn leaf(op: impl Into<String>, path: Term) -> ProofNode {
        ProofNode {
            op: op.into(),
            path,
            children: Vec::new(),
        }
    }

    fn node(op: impl Into<String>, path: Term, children: Vec<ProofNode>) -> ProofNode {
        ProofNode {
            op: op.into(),
            path,
            children,
        }
    }

    /// Statistics of the proof tree.
    pub fn stats(&self) -> ProofStats {
        let mut s = ProofStats::default();
        fn walk(n: &ProofNode, depth: u64, s: &mut ProofStats) {
            s.nodes += 1;
            s.depth = s.depth.max(depth);
            s.max_path_size = s.max_path_size.max(n.path.size());
            s.max_branching = s.max_branching.max(n.children.len() as u64);
            for c in &n.children {
                walk(c, depth + 1, s);
            }
        }
        walk(self, 1, &mut s);
        s
    }

    /// Renders the proof tree with indentation, one node per line
    /// (`op: path`), children indented below — the layout of Figure 6
    /// rotated a quarter turn.
    pub fn render(&self) -> String {
        let mut out = String::new();
        fn walk(n: &ProofNode, indent: usize, out: &mut String) {
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push_str(&format!("{}: {}\n", n.op, n.path));
            for c in &n.children {
                walk(c, indent + 1, out);
            }
        }
        walk(self, 0, &mut out);
        out
    }
}

/// Measured quantities of a proof tree (Theorem 5.2's bounds: branching
/// ≤ 2, depth `O(|v| + |Q|)`, path sizes polynomial).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Total nodes.
    pub nodes: u64,
    /// Depth (root = 1).
    pub depth: u64,
    /// Largest path (term) size appearing in the proof.
    pub max_path_size: u64,
    /// Maximum branching factor (the theorem guarantees ≤ 2 for core
    /// operations).
    pub max_branching: u64,
}

/// Builds a proof that `target ∈ [[expr]](input)`, or returns `None` if it
/// is not a member. Errors propagate from the underlying path semantics.
pub fn prove(expr: &Expr, input: &PathSet, target: &Term) -> Result<Option<ProofNode>, PathError> {
    let budget = PathBudget::default();
    let out = step(expr, input, &budget)?;
    if !out.contains(target) {
        return Ok(None);
    }
    build(expr, input, target, &budget).map(Some)
}

/// Replaces every `"premise"` leaf of `tree` by a proof through `expr`.
fn graft(
    tree: ProofNode,
    expr: &Expr,
    input: &PathSet,
    budget: &PathBudget,
) -> Result<ProofNode, PathError> {
    if tree.op == "premise" {
        return build(expr, input, &tree.path, budget);
    }
    let children = tree
        .children
        .into_iter()
        .map(|c| graft(c, expr, input, budget))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ProofNode {
        op: tree.op,
        path: tree.path,
        children,
    })
}

fn premise(path: Term) -> ProofNode {
    ProofNode::leaf("premise", path)
}

fn find_with_head<'a>(input: &'a PathSet, m: &Term) -> Option<&'a Term> {
    input.iter().find(|t| t.split_first().0 == m)
}

fn build(
    expr: &Expr,
    input: &PathSet,
    target: &Term,
    budget: &PathBudget,
) -> Result<ProofNode, PathError> {
    let missing = || PathError::Malformed {
        op: expr.to_string(),
        path: target.to_string(),
    };
    match expr {
        Expr::Id => Ok(ProofNode::node(
            "id",
            target.clone(),
            vec![build_input(input, target)?],
        )),
        Expr::Compose(f, g) => {
            let mid = step(f, input, budget)?;
            // Prove through g with premises in mid, then push each premise
            // down through f.
            let upper = build(g, &mid, target, budget)?;
            graft_compose(upper, f, input, budget)
        }
        Expr::Const(_) => {
            let (m, _) = target.split_first();
            let witness = find_with_head(input, m).ok_or_else(missing)?;
            Ok(ProofNode::node(
                "const",
                target.clone(),
                vec![build_input(input, witness)?],
            ))
        }
        Expr::Sng => {
            let (m, one, p) = target.split_two().ok_or_else(missing)?;
            if !one.is_sym("1") {
                return Err(missing());
            }
            let prem = Term::cons_opt(m.clone(), p.cloned());
            Ok(ProofNode::node(
                "sng",
                target.clone(),
                vec![build_input(input, &prem)?],
            ))
        }
        Expr::Flatten => {
            let (m, grp, p) = target.split_two().ok_or_else(missing)?;
            let Term::Pair(i, j) = grp else {
                return Err(missing());
            };
            let prem = Term::cons(
                m.clone(),
                Term::cons((**i).clone(), Term::cons_opt((**j).clone(), p.cloned())),
            );
            Ok(ProofNode::node(
                "flatten",
                target.clone(),
                vec![build_input(input, &prem)?],
            ))
        }
        Expr::Proj(a) => {
            let (m, p) = target.split_first();
            let prem = Term::cons(m.clone(), Term::cons_opt(Term::sym(a.as_str()), p.cloned()));
            Ok(ProofNode::node(
                format!("pi[{a}]"),
                target.clone(),
                vec![build_input(input, &prem)?],
            ))
        }
        Expr::Map(f) => {
            // target m.i.p ⇐ map_e ⇐ (m.i).p ∈ [[f]](map_b(input)).
            let (m, i, p) = target.split_two().ok_or_else(missing)?;
            let mid_target = Term::cons_opt(Term::cons(m.clone(), i.clone()), p.cloned());
            let grouped = map_b(input)?;
            let inner = build(f, &grouped, &mid_target, budget)?;
            // Premises of `inner` are in map_b(input); justify them with a
            // map_b node over the true input.
            let inner = graft_map_b(inner, input)?;
            Ok(ProofNode::node("map_e", target.clone(), vec![inner]))
        }
        Expr::Union(f, g) => {
            let (m, grp, p) = target.split_two().ok_or_else(missing)?;
            let Term::Pair(tag, i) = grp else {
                return Err(missing());
            };
            let prem = Term::cons(m.clone(), Term::cons_opt((**i).clone(), p.cloned()));
            let (branch, name) = if tag.is_sym("1") {
                (f, "union-left")
            } else {
                (g, "union-right")
            };
            let sub = build(branch, input, &prem, budget)?;
            Ok(ProofNode::node(name, target.clone(), vec![sub]))
        }
        Expr::MkTuple(fields) => {
            if fields.is_empty() {
                let (m, _) = target.split_first();
                let witness = find_with_head(input, m).ok_or_else(missing)?;
                return Ok(ProofNode::node(
                    "<>",
                    target.clone(),
                    vec![build_input(input, witness)?],
                ));
            }
            let (m, attr, p) = target.split_two().ok_or_else(missing)?;
            let field = fields
                .iter()
                .find(|(n, _)| attr.is_sym(n.as_str()))
                .ok_or_else(missing)?;
            let prem = Term::cons_opt(m.clone(), p.cloned());
            let sub = build(&field.1, input, &prem, budget)?;
            Ok(ProofNode::node("<...>", target.clone(), vec![sub]))
        }
        Expr::PairWith(attr) => {
            let aj = attr.as_str();
            let segs = target.segments();
            if segs.len() < 3 {
                return Err(missing());
            }
            let (m, i, a) = (segs[0], segs[1], segs[2]);
            let rest: Option<Term> = (segs.len() > 3)
                .then(|| Term::from_segments(segs[3..].iter().map(|s| (*s).clone()).collect()));
            if a.is_sym(aj) {
                // m.i.Aj.p ⇐ m.Aj.i.p
                let prem = Term::cons(
                    m.clone(),
                    Term::cons(Term::sym(aj), Term::cons_opt(i.clone(), rest)),
                );
                Ok(ProofNode::node(
                    format!("pairwith[{aj}]"),
                    target.clone(),
                    vec![build_input(input, &prem)?],
                ))
            } else {
                // m.i.Ak.p′ ⇐ m.Ak.p′ and ∃p m.Aj.i.p
                let prem1 = Term::cons(m.clone(), Term::cons_opt(a.clone(), rest));
                let witness = input
                    .iter()
                    .find(|t| {
                        t.split_two().is_some_and(|(m2, a2, r)| {
                            m2 == m && a2.is_sym(aj) && r.is_some_and(|r| r.split_first().0 == i)
                        })
                    })
                    .ok_or_else(missing)?;
                Ok(ProofNode::node(
                    format!("pairwith[{aj}]"),
                    target.clone(),
                    vec![build_input(input, &prem1)?, build_input(input, witness)?],
                ))
            }
        }
        Expr::Pred(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Atomic))
            if pa.len() == 1 && pb.len() == 1 =>
        {
            let (m, _) = target.split_first();
            // Find the common tail p with m.A.p and m.B.p.
            let a = pa[0].as_str();
            let b = pb[0].as_str();
            let mut found = None;
            for t in input {
                if let Some((m2, attr, p)) = t.split_two() {
                    if m2 == m && attr.is_sym(a) {
                        let other = Term::cons(m.clone(), Term::cons_opt(Term::sym(b), p.cloned()));
                        if input.contains(&other) {
                            found = Some((t.clone(), other));
                            break;
                        }
                    }
                }
            }
            let (p1, p2) = found.ok_or_else(missing)?;
            Ok(ProofNode::node(
                format!("{a} =atomic {b}"),
                target.clone(),
                vec![build_input(input, &p1)?, build_input(input, &p2)?],
            ))
        }
        Expr::Select(c) => {
            // Keep the path and record the (already verified) condition.
            Ok(ProofNode::node(
                format!("sigma[{c}]"),
                target.clone(),
                vec![build_input(input, target)?],
            ))
        }
        Expr::EmptyColl => Err(missing()),
        other => Err(PathError::Unsupported(other.to_string())),
    }
}

fn build_input(input: &PathSet, path: &Term) -> Result<ProofNode, PathError> {
    if input.contains(path) {
        Ok(premise(path.clone()))
    } else {
        Err(PathError::Malformed {
            op: "premise".to_string(),
            path: path.to_string(),
        })
    }
}

fn graft_compose(
    tree: ProofNode,
    f: &Expr,
    input: &PathSet,
    budget: &PathBudget,
) -> Result<ProofNode, PathError> {
    graft(tree, f, input, budget)
}

fn graft_map_b(tree: ProofNode, input: &PathSet) -> Result<ProofNode, PathError> {
    if tree.op == "premise" {
        // (m.i).p at grouped level ⇐ m.i.p at input level.
        let (head, p) = tree.path.split_first();
        let Term::Pair(m, i) = head else {
            return Err(PathError::Malformed {
                op: "map_b".to_string(),
                path: tree.path.to_string(),
            });
        };
        let prem = Term::cons((**m).clone(), Term::cons_opt((**i).clone(), p.cloned()));
        return Ok(ProofNode::node(
            "map_b",
            tree.path.clone(),
            vec![build_input(input, &prem)?],
        ));
    }
    let children = tree
        .children
        .into_iter()
        .map(|c| graft_map_b(c, input))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ProofNode {
        op: tree.op,
        path: tree.path,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::eval_paths;
    use crate::term::parse_term;
    use cv_monad::derived::product;
    use cv_value::parse_value;

    fn unit_input() -> PathSet {
        [parse_term("1.<>").unwrap()].into_iter().collect()
    }

    /// The running example of Figures 5 and 6:
    /// `⟨A: {1,2}, B: {2,3}⟩ ∘ pairwithA ∘ map(pairwithB ∘ map(A=B))
    ///  ∘ flatten ∘ flatten`.
    pub(crate) fn running_example() -> Expr {
        let const_ab = Expr::konst(parse_value("<A: {1, 2}, B: {2, 3}>").unwrap());
        const_ab
            .then(Expr::pairwith("A"))
            .then(
                Expr::pairwith("B")
                    .then(
                        Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B")))
                            .mapped(),
                    )
                    .mapped(),
            )
            .then(Expr::Flatten)
            .then(Expr::Flatten)
    }

    #[test]
    fn running_example_produces_one_truth_path() {
        // Exactly one pair (A=2, B=2) matches, so the final deterministic
        // tree has a single path ending in ⟨⟩ (Figure 5 (l)).
        let out = eval_paths(&running_example(), &unit_input()).unwrap();
        assert_eq!(out.len(), 1, "got {out:?}");
        let p = out.iter().next().unwrap();
        assert!(p.to_string().ends_with(".<>"), "got {p}");
        // The path records the provenance: member 2 of A paired with
        // member 1 of B — the groups (2.1) appear in the path.
        assert!(p.to_string().contains("(2.1)"), "got {p}");
    }

    #[test]
    fn proof_tree_certifies_membership() {
        let q = running_example();
        let out = eval_paths(&q, &unit_input()).unwrap();
        let target = out.iter().next().unwrap();
        let proof = prove(&q, &unit_input(), target).unwrap().unwrap();
        let stats = proof.stats();
        // Theorem 5.2: branching ≤ 2, all premises at the input.
        assert!(stats.max_branching <= 2, "{stats:?}");
        fn premises_ok(n: &ProofNode, input: &PathSet) -> bool {
            if n.children.is_empty() {
                n.op == "premise" && input.contains(&n.path)
            } else {
                n.children.iter().all(|c| premises_ok(c, input))
            }
        }
        assert!(premises_ok(&proof, &unit_input()), "\n{}", proof.render());
        // The proof mentions the equality branch (two premises), like
        // Figure 6's `A =atomic B` node.
        let rendered = proof.render();
        assert!(rendered.contains("=atomic"), "\n{rendered}");
        assert!(rendered.contains("flatten"), "\n{rendered}");
        assert!(rendered.contains("map_b"), "\n{rendered}");
    }

    #[test]
    fn non_members_have_no_proof() {
        let q = running_example();
        let bogus = parse_term("1.zzz").unwrap();
        assert_eq!(prove(&q, &unit_input(), &bogus).unwrap(), None);
    }

    #[test]
    fn proof_paths_grow_polynomially() {
        // Path sizes in the proof grow by concatenation only (Thm 5.2):
        // iterating the pairing construction k times keeps the max path
        // size linear in k, while the value grows doubly exponentially.
        let two = Expr::konst(parse_value("{0, 1}").unwrap());
        let mut sizes = Vec::new();
        for k in 0..4 {
            let mut q = two.clone();
            for _ in 0..k {
                q = q.then(product(Expr::Id, Expr::Id));
            }
            let out = eval_paths(&q, &unit_input()).unwrap();
            let target = out.iter().next().unwrap().clone();
            let proof = prove(&q, &unit_input(), &target).unwrap().unwrap();
            sizes.push(proof.stats().max_path_size);
        }
        // Linear-ish growth: each product step adds O(1) segments.
        for w in sizes.windows(2) {
            assert!(w[1] >= w[0]);
            assert!(w[1] - w[0] <= 16, "sizes {sizes:?}");
        }
    }

    #[test]
    fn union_proofs_pick_the_right_branch() {
        let one = Expr::atom("1").then(Expr::Sng);
        let two = Expr::atom("2").then(Expr::Sng);
        let q = one.union(two);
        let out = eval_paths(&q, &unit_input()).unwrap();
        for t in &out {
            let proof = prove(&q, &unit_input(), t).unwrap().unwrap();
            let want = if t.to_string().contains("(1.1)") {
                "union-left"
            } else {
                "union-right"
            };
            assert_eq!(proof.op, want);
        }
    }

    #[test]
    fn render_is_indented() {
        let q = Expr::Sng;
        let out = eval_paths(&q, &unit_input()).unwrap();
        let t = out.iter().next().unwrap();
        let proof = prove(&q, &unit_input(), t).unwrap().unwrap();
        let r = proof.render();
        assert!(r.starts_with("sng: 1.1.<>"));
        assert!(r.contains("\n  premise: 1.<>"));
    }
}
