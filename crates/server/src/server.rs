//! The TCP front door: a readiness-driven reactor multiplexing every
//! connection over a **fixed thread count**, bridging wire frames to the
//! [`QueryService`] pool.
//!
//! ## Architecture
//!
//! PR 7's server spawned two threads per connection (reader + eval) —
//! fine for hundreds of clients, fatal for the ROADMAP's "millions of
//! users" north star. This rewrite serves *all* connections from **one
//! reactor thread**:
//!
//! * The reactor owns an epoll instance ([`crate::reactor::Poller`]) and
//!   every socket: the (nonblocking) listener, one nonblocking
//!   `TcpStream` per connection with in-reactor read/write line buffers,
//!   and an eventfd ([`crate::reactor::WakeFd`]) the eval pool writes to
//!   announce completions. One `epoll_wait` therefore observes client
//!   I/O *and* pool completions; the thread count is `1 + workers`
//!   regardless of connection count.
//! * Complete request lines parse in the reactor and hand off through
//!   [`QueryService::try_submit`] — admission control included — with a
//!   reactor-chosen ticket. The pool worker evaluates and pushes
//!   `(ticket, result)` onto the completion queue
//!   ([`xq_core::CompletionSink`]), then wakes the eventfd.
//! * Responses to `query` frames flow through a per-connection FIFO
//!   (`pending` ids + out-of-order `done` results), so a pipelining
//!   client reads answers in the order it sent queries — exactly the
//!   PR 7 contract, now without a thread parked per connection. Frame
//!   errors (`bad_request`, `unknown_doc`) are still answered
//!   immediately, ahead of in-flight queries, as before.
//!
//! Per-connection fairness: at most [`ServerConfig::batch_max`] buffered
//! lines are handled per connection per reactor round, so one pipelining
//! firehose cannot starve its neighbours.
//!
//! ## Cancellation and deadlines
//!
//! Unchanged contracts from PR 7, relocated into the reactor: a `query`
//! frame's [`Budget`] starts from the connection tenant's quota, gains a
//! fresh [`CancelFlag`] *registered before submission* (so a `cancel`
//! racing ahead of evaluation still finds its flag), and an optional
//! `deadline_ms` deadline. A `cancel` frame acks first, then trips the
//! flag — the ack's position in the response stream stays deterministic.
//! Client EOF trips every flag the connection still has in flight, after
//! any already-buffered lines have been handled (matching the old
//! reader's `lines()`-then-cleanup order). Duplicate in-flight query ids
//! are rejected with `bad_request` — previously a duplicate *clobbered*
//! the first request's flag registration and the first completion
//! stripped protection from the still-running second, so a later
//! `cancel`/EOF silently no-opped (the PR 8 cancel-registry bugfix).
//!
//! ## Rate limits vs budget quotas
//!
//! Tenant **budget quotas** ([`ServerConfig::tenants`]) bound how much
//! work one request may do; tenant **rate limits**
//! ([`ServerConfig::rates`]) bound how many requests per second a tenant
//! may submit — a token bucket per tenant, shared across all of the
//! tenant's connections, refilled continuously at
//! [`RateLimit::per_sec`] up to a burst of [`RateLimit::burst`]. A query
//! arriving on an empty bucket is answered with the `rate_limited` wire
//! code (through the ordered FIFO, like `overloaded`) without consuming
//! any pool capacity.
//!
//! ## Shedding
//!
//! Admission stays the pool's compare-and-swap against
//! [`ServerConfig::queue_capacity`] — now on a dedicated
//! admission-slot gauge, so internal `run_batch` traffic can't cause
//! spurious sheds: a frame that arrives past the high-water mark is
//! answered `overloaded` without ever queueing.
//!
//! ## Graceful drain
//!
//! [`Server::shutdown`] (also run by `Drop`): stop accepting, refuse
//! late `query` frames with the `shutting_down` code, let queued and
//! in-flight work finish and flush its answers, cancel whatever is still
//! running once [`ServerConfig::drain_deadline`] passes, then close
//! every connection and join every thread — the reactor and, via the
//! pool's own drop, every worker. A server with an idle connected client
//! shuts down promptly (pre-reactor, the blocking reader thread leaked).

use crate::protocol::Frame;
use crate::reactor::{Event, Poller, TimerWheel, WakeFd};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xq_core::{
    Budget, CancelFlag, CompletionSink, Faults, PoolConfig, QueryService, Request, ServeMode,
    ServiceError,
};

use cv_xtree::ArenaDoc;

/// A per-tenant request-rate limit: a token bucket holding at most
/// `burst` tokens, refilled continuously at `per_sec` tokens per second.
/// Each `query` frame spends one token; an empty bucket answers
/// `rate_limited`. This bounds *request frequency* — orthogonal to the
/// per-request *work* bound of the tenant's [`Budget`] quota.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Sustained requests per second (fractional rates are fine: `0.5`
    /// is one request every two seconds; `0.0` never refills — useful
    /// for deterministic tests).
    pub per_sec: f64,
    /// Bucket capacity: the largest instantaneous burst admitted. New
    /// buckets start full.
    pub burst: u32,
}

/// Server configuration; see the field docs. `Default` gives two
/// workers, the VM route, an effectively unbounded queue, no rate
/// limits, a one-second drain deadline, and no documents — tests and
/// embedders override what they need.
#[derive(Clone)]
pub struct ServerConfig {
    /// Pool worker threads. Total server threads are `workers + 1` (the
    /// reactor), independent of connection count.
    pub workers: usize,
    /// Pool evaluation route (VM by default).
    pub mode: ServeMode,
    /// Admission high-water mark: frames arriving while this many
    /// admission-controlled requests are queued (accepted, unserved)
    /// are shed with an `overloaded` response.
    pub queue_capacity: usize,
    /// Most buffered frames the reactor handles per connection per
    /// round — the pipelining-fairness bound.
    pub batch_max: usize,
    /// Budget quota (per-request *work* cap) for connections that never
    /// identify a tenant, and for unknown tenant ids.
    pub default_budget: Budget,
    /// Per-tenant budget quotas, keyed by the `hello` frame's tenant id.
    pub tenants: HashMap<String, Budget>,
    /// Per-tenant request-*rate* limits (requests/sec token buckets),
    /// keyed like [`ServerConfig::tenants`]. One bucket per tenant,
    /// shared by all of the tenant's connections. Tenants without an
    /// entry fall back to [`ServerConfig::default_rate`].
    pub rates: HashMap<String, RateLimit>,
    /// Rate limit for tenants with no [`ServerConfig::rates`] entry
    /// (including connections that never sent `hello`, which count as
    /// tenant `"default"`). `None` means unlimited.
    pub default_rate: Option<RateLimit>,
    /// How long [`Server::shutdown`] lets queued and in-flight work run
    /// before cancelling it. Queued work that finishes earlier is
    /// answered in full and the server exits as soon as it drains.
    pub drain_deadline: Duration,
    /// The served documents, keyed by the name `query` frames cite.
    pub docs: HashMap<String, Arc<ArenaDoc>>,
    /// Seeded fault registry for the pool (chaos testing). `None` — the
    /// default — falls back to the `XQ_FAULT_SPEC`/`XQ_FAULT_SEED`
    /// environment ([`xq_core::Faults::from_env`]); absent there too,
    /// injection is off and costs nothing.
    pub faults: Option<Arc<Faults>>,
    /// Write-side backpressure high-water mark: a connection whose write
    /// buffer reaches this many bytes stops being polled readable (no
    /// new frames are read, so no new work is created) until the buffer
    /// drains to [`ServerConfig::write_low_water`]. Bounds per-connection
    /// buffering by roughly `high_water + one response`, instead of "as
    /// fast as the pool can answer a reader that never reads".
    pub write_high_water: usize,
    /// Where a corked connection resumes reading (hysteresis: well below
    /// the high-water mark, so resume isn't immediately re-corked).
    pub write_low_water: usize,
    /// Close connections with no traffic in this long (`None` — the
    /// default — never). Enforced by a coarse timer wheel; precision is
    /// a quarter of the timeout, at worst. A connection with work still
    /// pending or unflushed output is not idle.
    pub idle_timeout: Option<Duration>,
    /// Worker respawns the pool supervisor may spend over the server's
    /// lifetime before degrading ([`xq_core::PoolConfig::restart_budget`]).
    /// Long chaos soaks raise this above the expected crash count.
    pub restart_budget: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            mode: ServeMode::default(),
            queue_capacity: usize::MAX,
            batch_max: 32,
            default_budget: Budget::default(),
            tenants: HashMap::new(),
            rates: HashMap::new(),
            default_rate: None,
            drain_deadline: Duration::from_secs(1),
            docs: HashMap::new(),
            faults: None,
            write_high_water: 256 * 1024,
            write_low_water: 64 * 1024,
            idle_timeout: None,
            restart_budget: PoolConfig::default().restart_budget,
        }
    }
}

/// Monotonic counters the server exposes for tests and the harness.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Query frames answered `ok`.
    pub served: AtomicU64,
    /// Query frames answered `overloaded` (shed at admission).
    pub shed: AtomicU64,
    /// Query frames answered `rate_limited` (tenant bucket empty).
    pub rate_limited: AtomicU64,
    /// Query frames answered `cancelled` or `deadline`.
    pub cancelled: AtomicU64,
    /// Query frames answered `internal_error` (a contained panic, a
    /// crashed worker, or an exhausted restart budget).
    pub internal_errors: AtomicU64,
    /// Times a connection hit the write high-water mark and was corked
    /// (stopped being polled readable until its buffer drained).
    pub backpressured: AtomicU64,
    /// Connections closed by the idle timeout.
    pub idle_closed: AtomicU64,
    /// High-water mark of any single connection's write buffer, in bytes
    /// — what backpressure is bounding.
    pub peak_write_buffer: AtomicU64,
}

/// A running front door bound to a loopback port. [`Server::shutdown`]
/// (or drop) drains gracefully: accepting stops, outstanding work
/// finishes or is cancelled at the drain deadline, and every thread —
/// reactor and pool workers — is joined.
pub struct Server {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    service: Option<Arc<QueryService>>,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakeFd>,
    reactor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:0` (the OS picks a free port — [`Server::addr`]
    /// says which), spawns the reactor thread, and starts accepting.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let faults = match &config.faults {
            Some(f) => Some(Arc::clone(f)),
            // A malformed XQ_FAULT_SPEC is a startup error, not a
            // silently-uninjected chaos run.
            None => Faults::from_env()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?
                .map(Arc::new),
        };
        let service = Arc::new(
            QueryService::with_config(PoolConfig {
                workers: config.workers,
                mode: config.mode,
                faults,
                restart_budget: config.restart_budget,
                ..PoolConfig::default()
            })
            .with_queue_capacity(config.queue_capacity),
        );
        let wake = Arc::new(WakeFd::new()?);
        let (completion_tx, completion_rx) = channel();
        let sink = {
            let wake = Arc::clone(&wake);
            CompletionSink::new(completion_tx, Arc::new(move || wake.wake()))
        };
        let poller = Poller::new()?;
        poller.add(wake.raw(), TOKEN_WAKE, true, false)?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        // Wheel resolution: a quarter of the timeout (clamped sane), so
        // expiry is at most ~25% late and the reactor never wakes more
        // than ~4x per timeout just to mind the clock.
        let wheel = config.idle_timeout.map(|d| {
            TimerWheel::new(
                (d / 4).clamp(Duration::from_millis(1), Duration::from_millis(250)),
                64,
            )
        });
        let reactor = Reactor {
            poller,
            wake: Arc::clone(&wake),
            listener: Some(listener),
            config: Arc::new(config),
            service: Arc::clone(&service),
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
            completions: completion_rx,
            sink,
            conns: HashMap::new(),
            routes: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            next_ticket: 0,
            buckets: HashMap::new(),
            drain_deadline: None,
            drain_cancelled: false,
            wheel,
            ewma_us: 0.0,
        };
        let handle = std::thread::spawn(move || reactor.run());
        Ok(Server {
            addr,
            stats,
            service: Some(service),
            shutdown,
            wake,
            reactor: Some(handle),
        })
    }

    /// The bound address (always loopback, ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's monotonic counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Requests accepted into the pool queue but not yet being
    /// evaluated.
    pub fn queue_depth(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.queue_depth())
    }

    /// Requests a pool worker is evaluating right now.
    pub fn in_flight(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.in_flight())
    }

    /// Admission slots held right now (the gauge `queue_capacity`
    /// bounds).
    pub fn admitted_depth(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.admitted_depth())
    }

    /// Pool workers running right now (dips while the supervisor
    /// respawns a crashed worker).
    pub fn alive_workers(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.alive_workers())
    }

    /// Worker respawns the pool supervisor has performed, ever.
    pub fn restarts(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.restarts())
    }

    /// Worker threads lost to panics escaping the unwind fence, ever.
    pub fn worker_deaths(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.worker_deaths())
    }

    /// Panics the pool's per-request unwind fence contained, ever.
    pub fn contained_panics(&self) -> usize {
        self.service.as_ref().map_or(0, |s| s.contained_panics())
    }

    /// Drains and stops the server: stop accepting, refuse late `query`
    /// frames (`shutting_down`), finish queued and in-flight work —
    /// cancelling whatever outlives [`ServerConfig::drain_deadline`] —
    /// flush and close every connection, and join the reactor and every
    /// pool worker. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        if let Some(service) = self.service.take() {
            // The reactor's clone is gone (thread joined), so this is
            // the last Arc and dropping it joins the worker pool.
            drop(Arc::try_unwrap(service).map(drop));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

const TOKEN_WAKE: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Longest accepted request line; a connection exceeding it without a
/// newline is dropped (the pre-reactor `BufReader` had no such guard —
/// one hostile connection could balloon memory without bound).
const MAX_LINE: usize = 1 << 20;

/// A per-tenant token bucket (see [`RateLimit`]).
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl Bucket {
    fn full(limit: &RateLimit) -> Bucket {
        Bucket {
            tokens: limit.burst as f64,
            last: Instant::now(),
        }
    }

    fn take(&mut self, limit: &RateLimit) -> bool {
        let now = Instant::now();
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * limit.per_sec).min(limit.burst as f64);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// What [`Conn::take_line`] found in the read buffer.
enum LineStep {
    /// No complete line buffered.
    None,
    /// One complete line, UTF-8 validated, `\n` (and any `\r`) stripped.
    Line(String),
    /// Invalid UTF-8 or an over-long line: drop the connection (the
    /// pre-reactor `BufReader::lines` path did the same for bad UTF-8).
    Fatal,
}

/// Per-connection state, owned entirely by the reactor thread — no
/// locks anywhere on the serving path.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed as lines.
    rbuf: Vec<u8>,
    /// Encoded response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// The tenant named by `hello` (`"default"` until then) — the rate
    /// bucket key.
    tenant: String,
    /// The tenant's budget quota, template for each request's budget.
    budget: Budget,
    /// Cancel flags of requests submitted and not yet completed — what
    /// `cancel` frames, EOF, and the drain deadline trip.
    flags: HashMap<u64, CancelFlag>,
    /// Query ids awaiting responses, in submission order — the FIFO
    /// that keeps pipelined responses ordered.
    pending: VecDeque<u64>,
    /// Out-of-order completions waiting for their turn at the FIFO head.
    done: HashMap<u64, Frame>,
    /// The socket returned EOF; remaining buffered lines still run.
    eof_seen: bool,
    /// EOF fully processed (buffered lines handled, flags tripped).
    read_closed: bool,
    /// Write side failed: discard output, tear down.
    dead: bool,
    /// Backpressured: the write buffer passed the high-water mark, so
    /// the read side is paused (no epoll read interest, no buffered-line
    /// processing) until the buffer drains to the low-water mark.
    /// Responses for work already in flight still append — the cork
    /// stops *new* work, which is the only side the reactor controls.
    corked: bool,
    /// Last socket traffic in either direction — the idle-timeout clock.
    last_activity: Instant,
    /// Current epoll interest pair, to make re-registration a no-op
    /// when nothing changed.
    interest: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream, budget: Budget) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            tenant: "default".to_string(),
            budget,
            flags: HashMap::new(),
            pending: VecDeque::new(),
            done: HashMap::new(),
            eof_seen: false,
            read_closed: false,
            dead: false,
            corked: false,
            last_activity: Instant::now(),
            interest: (true, false),
        }
    }

    /// Extracts the next complete line from `rbuf`, mirroring
    /// `BufRead::lines` (strips `\n` and a trailing `\r`; invalid UTF-8
    /// is fatal to the connection).
    fn take_line(&mut self) -> LineStep {
        match self.rbuf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let mut line: Vec<u8> = self.rbuf.drain(..=i).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                match String::from_utf8(line) {
                    Ok(s) => LineStep::Line(s),
                    Err(_) => LineStep::Fatal,
                }
            }
            None if self.rbuf.len() > MAX_LINE => LineStep::Fatal,
            None => LineStep::None,
        }
    }

    /// Whether a complete buffered line is waiting (drives zero-timeout
    /// polling so fairness-deferred lines are handled promptly). A
    /// corked connection's lines don't count — they are deliberately
    /// deferred, and spinning on them would busy-loop the reactor for
    /// exactly as long as the backpressure lasts.
    fn has_buffered_line(&self) -> bool {
        !self.read_closed && !self.dead && !self.corked && self.rbuf.contains(&b'\n')
    }

    /// Trips every in-flight flag (EOF, fatal line, write failure, or
    /// the drain deadline).
    fn trip_flags(&self) {
        for flag in self.flags.values() {
            flag.cancel();
        }
    }

    /// Done serving: reaped once nothing remains to deliver.
    fn finished(&self) -> bool {
        self.dead || (self.read_closed && self.pending.is_empty() && self.wbuf.is_empty())
    }
}

/// The reactor: owns the poller, the listener, every connection, and the
/// pool handoff. Runs until shutdown + drain complete.
struct Reactor {
    poller: Poller,
    wake: Arc<WakeFd>,
    listener: Option<TcpListener>,
    config: Arc<ServerConfig>,
    service: Arc<QueryService>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    completions: Receiver<(u64, Result<String, ServiceError>)>,
    sink: CompletionSink,
    conns: HashMap<u64, Conn>,
    /// Submission ticket → (connection token, request id, submit time).
    /// Entries outlive their connection so completions for torn-down
    /// connections still reach the stats counters; the submit time feeds
    /// the latency EWMA behind `retry_after_ms` hints.
    routes: HashMap<u64, (u64, u64, Instant)>,
    next_token: u64,
    next_ticket: u64,
    /// Per-tenant rate-limit buckets (reactor-owned: no locking).
    buckets: HashMap<String, Bucket>,
    /// Set when shutdown is observed: the moment outstanding work gets
    /// cancelled.
    drain_deadline: Option<Instant>,
    /// The deadline cancellation has fired.
    drain_cancelled: bool,
    /// Idle-timeout deadlines (present iff `config.idle_timeout` is).
    wheel: Option<TimerWheel>,
    /// Exponentially-weighted mean submit→completion latency in
    /// microseconds (0 until the first sample) — the `overloaded`
    /// frame's `retry_after_ms` hint: "one request's worth of time from
    /// now" is when a slot has plausibly freed.
    ewma_us: f64,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.poll_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                break; // unrecoverable poller failure
            }
            for ev in events.clone() {
                match ev.token {
                    TOKEN_WAKE => self.wake.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_ready(token, &ev),
                }
            }
            self.drain_completions();
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in &tokens {
                self.process_buffered(*token);
            }
            if self.shutdown.load(Ordering::SeqCst) && self.drain_deadline.is_none() {
                self.begin_drain();
            }
            if let Some(deadline) = self.drain_deadline {
                if !self.drain_cancelled && Instant::now() >= deadline {
                    self.drain_cancelled = true;
                    for conn in self.conns.values() {
                        conn.trip_flags();
                    }
                }
            }
            self.check_idle();
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                self.post_io(token);
            }
            self.reap();
            if self.drain_deadline.is_some() && self.drained() {
                break; // dropping self closes every remaining socket
            }
        }
    }

    /// Zero while fairness-deferred lines wait, the time to the drain
    /// deadline while draining, otherwise block until an event — capped
    /// at the timer wheel's granularity while idle deadlines are live,
    /// so expiry is checked on schedule even with no I/O.
    fn poll_timeout(&self) -> i32 {
        if self.conns.values().any(Conn::has_buffered_line) {
            return 0;
        }
        let base = match self.drain_deadline {
            Some(d) if !self.drain_cancelled => {
                let ms = d.saturating_duration_since(Instant::now()).as_millis();
                ms.min(i32::MAX as u128) as i32
            }
            // Draining past cancellation: only completions remain, and
            // they arrive via the wake fd.
            _ => -1,
        };
        match &self.wheel {
            Some(w) if !self.conns.is_empty() => {
                let gran = w.granularity().as_millis().clamp(1, i32::MAX as u128) as i32;
                if base < 0 {
                    gran
                } else {
                    base.min(gran)
                }
            }
            _ => base,
        }
    }

    /// Sweeps the idle wheel: a connection whose deadline passed with no
    /// traffic since — and nothing pending or unflushed, which would
    /// make "idle" a misnomer — is torn down; everything else re-arms at
    /// its next plausible expiry.
    fn check_idle(&mut self) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        // Taken out for the sweep so re-arming can borrow `conns`
        // alongside it.
        let Some(mut wheel) = self.wheel.take() else {
            return;
        };
        let now = Instant::now();
        let mut due = Vec::new();
        wheel.expire(now, &mut due);
        for token in due {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // already reaped
            };
            if conn.dead {
                continue;
            }
            let busy = !conn.pending.is_empty() || !conn.wbuf.is_empty() || conn.corked;
            let deadline = conn.last_activity + timeout;
            if !busy && deadline <= now {
                self.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
                conn.trip_flags();
            } else {
                // Saw traffic (or is mid-work): re-arm for when it could
                // next actually be idle-expired.
                let gran = wheel.granularity();
                wheel.insert(token, deadline.max(now + gran));
            }
        }
        self.wheel = Some(wheel);
    }

    /// Everything outstanding is delivered (or undeliverable): exit.
    fn drained(&self) -> bool {
        let pendings_done =
            self.routes.is_empty() && self.conns.values().all(|c| c.dead || c.pending.is_empty());
        let flushed = self.conns.values().all(|c| c.dead || c.wbuf.is_empty());
        // Before the deadline, wait for clients to take their flushed
        // answers; past it, a stalled reader no longer delays exit.
        pendings_done && (flushed || self.drain_cancelled)
    }

    /// Shutdown observed: close the door and start the drain clock.
    fn begin_drain(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
            // Dropping the listener closes it: connection attempts from
            // here on are refused at the TCP layer.
        }
        self.drain_deadline = Some(Instant::now() + self.config.drain_deadline);
    }

    /// Accepts until the backlog is empty (level-triggered listener).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Line-delimited request/response RPC is exactly the
                    // small-write pattern Nagle + delayed ACK punish with
                    // ~40ms stalls; every response must go out now.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.stats.connections.fetch_add(1, Ordering::Relaxed);
                    self.conns
                        .insert(token, Conn::new(stream, self.config.default_budget.clone()));
                    if let (Some(wheel), Some(timeout)) =
                        (&mut self.wheel, self.config.idle_timeout)
                    {
                        wheel.insert(token, Instant::now() + timeout);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient per-connection failures (ECONNABORTED …).
                Err(_) => return,
            }
        }
    }

    /// A connection's readiness event: drain the socket into `rbuf`
    /// and/or retry the write buffer. Line handling happens afterwards
    /// in [`Reactor::process_buffered`].
    fn conn_ready(&mut self, token: u64, ev: &Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if ev.readable || ev.hangup {
            let mut chunk = [0u8; 16 * 1024];
            // A corked connection is not read at all — the kernel socket
            // buffer (and eventually the peer's send path) absorbs the
            // pressure, which is the whole point of backpressure.
            while !conn.eof_seen && !conn.dead && !conn.corked {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => conn.eof_seen = true,
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        // Stop pulling once a hostile line is over-long;
                        // process_buffered turns that into a teardown.
                        if conn.rbuf.len() > MAX_LINE {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Read side gone without clean EOF: same
                        // teardown as EOF, nothing more will arrive.
                        conn.eof_seen = true;
                    }
                }
            }
        }
        if ev.writable || ev.hangup {
            Self::try_write(conn);
        }
    }

    /// Handles up to `batch_max` buffered lines for one connection (the
    /// pipelining-fairness bound), then finalizes EOF once the buffer
    /// holds no complete line.
    fn process_buffered(&mut self, token: u64) {
        let limit = self.config.batch_max.max(1);
        for _ in 0..limit {
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.read_closed || conn.dead || conn.corked {
                    // Corked: already-buffered lines wait too — handling
                    // them would create new work while the connection is
                    // exactly the one we're trying to slow down.
                    return;
                }
                conn.take_line()
            };
            match step {
                LineStep::Line(line) => self.handle_line(token, &line),
                LineStep::Fatal => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        // Matches the old reader: the connection is
                        // dropped, its outstanding work cancelled, but
                        // already-written responses still flush.
                        conn.read_closed = true;
                        conn.rbuf.clear();
                        conn.trip_flags();
                    }
                    return;
                }
                LineStep::None => break,
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.eof_seen && !conn.read_closed && !conn.rbuf.contains(&b'\n') {
                // EOF, and every complete line has been handled: the old
                // reader's post-loop cleanup — cancel what's in flight.
                conn.read_closed = true;
                conn.rbuf.clear();
                conn.trip_flags();
            }
        }
    }

    /// One request line: parse, dispatch by op. Protocol-level errors
    /// answer immediately (ahead of in-flight queries, as PR 7 did);
    /// query outcomes flow through the ordered FIFO.
    fn handle_line(&mut self, token: u64, line: &str) {
        if line.trim().is_empty() {
            return;
        }
        let frame = match Frame::parse(line) {
            Ok(f) => f,
            Err(e) => {
                self.respond(token, bad_request(e));
                return;
            }
        };
        match frame.get_str("op") {
            Some("hello") => {
                let tenant = frame.get_str("tenant").unwrap_or("default").to_string();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.budget = self
                        .config
                        .tenants
                        .get(&tenant)
                        .cloned()
                        .unwrap_or_else(|| self.config.default_budget.clone());
                    conn.tenant = tenant.clone();
                }
                let resp = Frame::new()
                    .bool("ok", true)
                    .str("op", "hello")
                    .str("tenant", tenant);
                self.respond(token, resp);
            }
            Some("cancel") => {
                let Some(id) = frame.get_uint("id") else {
                    self.respond(token, bad_request("cancel needs a numeric id"));
                    return;
                };
                // Ack first, then trip the flag: the ack's position in
                // the response stream is deterministic (before the
                // cancelled query's own response), which the golden
                // suite pins.
                let resp = Frame::new()
                    .bool("ok", true)
                    .str("op", "cancel")
                    .uint("id", id);
                self.respond(token, resp);
                if let Some(conn) = self.conns.get(&token) {
                    if let Some(flag) = conn.flags.get(&id) {
                        flag.cancel();
                    }
                }
            }
            Some("query") => self.handle_query(token, &frame),
            _ => self.respond(token, bad_request("op must be hello, query, or cancel")),
        }
    }

    /// A `query` frame: validate, rate-limit, register the cancel flag,
    /// and hand off to the pool.
    fn handle_query(&mut self, token: u64, frame: &Frame) {
        let Some(id) = frame.get_uint("id") else {
            self.respond(token, bad_request("query needs a numeric id"));
            return;
        };
        if self.drain_deadline.is_some() {
            // Late frame during drain: refused, never queued.
            let resp = Frame::new()
                .bool("ok", false)
                .uint("id", id)
                .str("code", "shutting_down")
                .str("error", "server is draining");
            self.respond(token, resp);
            return;
        }
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if conn.pending.contains(&id) {
            // The duplicate-id bugfix: a second in-flight `query` with
            // the same id used to clobber the first's cancel-flag
            // registration; now it is rejected outright.
            let resp = bad_request(format!("id {id} is already in flight")).uint("id", id);
            self.respond(token, resp);
            return;
        }
        let Some(query) = frame.get_str("query") else {
            self.respond(token, bad_request("query needs query text").uint("id", id));
            return;
        };
        let Some(doc_name) = frame.get_str("doc") else {
            self.respond(token, bad_request("query needs a doc name").uint("id", id));
            return;
        };
        let Some(doc) = self.config.docs.get(doc_name) else {
            let resp = Frame::new()
                .bool("ok", false)
                .uint("id", id)
                .str("code", "unknown_doc")
                .str("error", format!("no document named {doc_name:?}"));
            self.respond(token, resp);
            return;
        };
        // Rate limit: one token per well-formed query, from the
        // tenant's shared bucket. Refusals take the ordered FIFO (like
        // `overloaded`) so pipelined responses stay in submission order.
        let tenant = conn.tenant.clone();
        let limit = self
            .config
            .rates
            .get(&tenant)
            .or(self.config.default_rate.as_ref());
        if let Some(limit) = limit {
            let bucket = self
                .buckets
                .entry(tenant)
                .or_insert_with(|| Bucket::full(limit));
            if !bucket.take(limit) {
                self.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                let mut resp = Frame::new()
                    .bool("ok", false)
                    .uint("id", id)
                    .str("code", "rate_limited")
                    .str("error", "rate limit exceeded");
                // When the bucket refills at all, one token is
                // ceil(1000/per_sec) ms out — the soonest a retry can
                // succeed. A never-refilling bucket has no honest hint.
                if limit.per_sec > 0.0 {
                    resp = resp.uint("retry_after_ms", (1000.0 / limit.per_sec).ceil() as u64);
                }
                // The conn re-borrow: `respond`-style paths look the
                // connection up again because `handle_line` may have
                // invalidated earlier borrows; a connection torn down
                // mid-line simply drops the response.
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                conn.pending.push_back(id);
                conn.done.insert(id, resp);
                return;
            }
        }
        let flag = CancelFlag::new();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut budget = conn.budget.clone().with_cancel(flag.clone());
        if let Some(ms) = frame.get_uint("deadline_ms") {
            budget = budget.with_deadline_in(Duration::from_millis(ms));
        }
        let mut request = Request::new(query, Arc::clone(doc));
        request.budget = budget;
        // Register before submitting: a cancel (or EOF) racing the
        // evaluation must still reach the flag.
        conn.pending.push_back(id);
        conn.flags.insert(id, flag);
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.routes.insert(ticket, (token, id, Instant::now()));
        if !self.service.try_submit(ticket, request, &self.sink) {
            // Shed at admission: the result is known now; it still takes
            // the FIFO so responses stay ordered. The retry hint is one
            // EWMA-request's worth of time out — when a slot has
            // plausibly freed.
            self.routes.remove(&ticket);
            let frame = render(&self.stats, id, Err(ServiceError::Overloaded))
                .uint("retry_after_ms", self.overload_retry_ms());
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.flags.remove(&id);
            conn.done.insert(id, frame);
        }
    }

    /// The `overloaded` frame's retry hint: the smoothed per-request
    /// latency, rounded up to a millisecond. Before any sample exists
    /// the hint is the 1ms floor — deterministic, which the golden
    /// transcripts rely on (their overload scenarios shed from a fresh
    /// server).
    fn overload_retry_ms(&self) -> u64 {
        ((self.ewma_us / 1000.0).ceil() as u64).clamp(1, 60_000)
    }

    /// Routes every queued pool completion to its connection's FIFO
    /// (counting stats even when the connection is already gone).
    fn drain_completions(&mut self) {
        while let Ok((ticket, result)) = self.completions.try_recv() {
            let Some((token, id, submitted)) = self.routes.remove(&ticket) else {
                continue;
            };
            // Feed the latency EWMA (α = 0.2): smooth enough to ride out
            // one slow query, fresh enough to track load shifts.
            let sample_us = submitted.elapsed().as_micros().min(u64::MAX as u128) as f64;
            self.ewma_us = if self.ewma_us == 0.0 {
                sample_us
            } else {
                0.8 * self.ewma_us + 0.2 * sample_us
            };
            let frame = render(&self.stats, id, result);
            if let Some(conn) = self.conns.get_mut(&token) {
                if !conn.dead {
                    conn.flags.remove(&id);
                    conn.done.insert(id, frame);
                }
            }
            // Connection torn down: the answer is undeliverable, but the
            // counters above still observed it (the disconnect-cancels
            // contract is tested through exactly this path).
        }
    }

    /// An immediate (non-FIFO) response: protocol errors, hello/cancel
    /// acks — written ahead of in-flight query answers, like the PR 7
    /// reader thread did.
    fn respond(&mut self, token: u64, frame: Frame) {
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.dead {
                let mut line = frame.encode();
                line.push('\n');
                conn.wbuf.extend_from_slice(line.as_bytes());
            }
        }
    }

    /// Moves ready FIFO-ordered answers into the write buffer, flushes
    /// what the socket will take, and refreshes epoll interest.
    fn post_io(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while let Some(front) = conn.pending.front() {
            let Some(frame) = conn.done.remove(front) else {
                break;
            };
            conn.pending.pop_front();
            if !conn.dead {
                let mut line = frame.encode();
                line.push('\n');
                conn.wbuf.extend_from_slice(line.as_bytes());
            }
        }
        self.stats
            .peak_write_buffer
            .fetch_max(conn.wbuf.len() as u64, Ordering::Relaxed);
        Self::try_write(conn);
        // Backpressure with hysteresis: cork at the high-water mark
        // (stop reading → stop creating work), uncork only once the
        // buffer has drained to the low-water mark, so a slow reader
        // doesn't flap between states every round.
        if !conn.corked && conn.wbuf.len() >= self.config.write_high_water {
            conn.corked = true;
            self.stats.backpressured.fetch_add(1, Ordering::Relaxed);
        } else if conn.corked && conn.wbuf.len() <= self.config.write_low_water {
            conn.corked = false;
        }
        let want = (
            !conn.eof_seen && !conn.read_closed && !conn.dead && !conn.corked,
            !conn.wbuf.is_empty() && !conn.dead,
        );
        if want != conn.interest {
            conn.interest = want;
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), token, want.0, want.1);
        }
    }

    /// Writes as much of `wbuf` as the socket takes right now. A write
    /// failure kills the connection and cancels its outstanding work.
    fn try_write(conn: &mut Conn) {
        let mut written = 0;
        while written < conn.wbuf.len() && !conn.dead {
            match conn.stream.write(&conn.wbuf[written..]) {
                Ok(0) => conn.dead = true,
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    written += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => conn.dead = true,
            }
        }
        conn.wbuf.drain(..written);
        if conn.dead {
            conn.wbuf.clear();
            conn.trip_flags();
        }
    }

    /// Deregisters and drops finished connections (dropping the stream
    /// closes it). Their `routes` entries stay until the completions
    /// arrive, so stats never lose a result.
    fn reap(&mut self) {
        let goners: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.finished())
            .map(|(t, _)| *t)
            .collect();
        for token in goners {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.delete(conn.stream.as_raw_fd());
            }
        }
    }
}

/// A frame-level `bad_request` answer.
fn bad_request(error: impl Into<String>) -> Frame {
    Frame::new()
        .bool("ok", false)
        .str("code", "bad_request")
        .str("error", error.into())
}

/// Maps a pool result to its wire frame, bumping the stats counters —
/// the one place query outcomes are counted, deliverable or not.
fn render(stats: &ServerStats, id: u64, result: Result<String, ServiceError>) -> Frame {
    match result {
        Ok(xml) => {
            stats.served.fetch_add(1, Ordering::Relaxed);
            Frame::new()
                .bool("ok", true)
                .uint("id", id)
                .str("result", xml)
        }
        Err(e) => {
            let code = match &e {
                ServiceError::Parse(_) => "parse",
                ServiceError::Eval(_) => "eval",
                ServiceError::Overloaded => "overloaded",
                ServiceError::Cancelled => "cancelled",
                ServiceError::DeadlineExceeded => "deadline",
                ServiceError::Internal(_) => "internal_error",
            };
            match &e {
                ServiceError::Overloaded => {
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                }
                ServiceError::Cancelled | ServiceError::DeadlineExceeded => {
                    stats.cancelled.fetch_add(1, Ordering::Relaxed);
                }
                ServiceError::Internal(_) => {
                    stats.internal_errors.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            Frame::new()
                .bool("ok", false)
                .uint("id", id)
                .str("code", code)
                .str("error", e.to_string())
        }
    }
}
