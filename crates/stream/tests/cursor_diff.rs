//! The cursor-core differential suite: the refactored streaming engine
//! (one `Pipeline` behind every entry point) is locked against **two**
//! oracles over the seeded T17 coverage corpus
//! (`xq_bench::coverage_corpus`):
//!
//! * the **pre-refactor engine**, frozen verbatim in
//!   `xq_bench::legacy_stream` (recovered from git history, tests
//!   stripped) — compared
//!   for result bytes *and* `StreamStats` counters (`pulls`,
//!   `recomputations`, `peak_live_cursors`, `tokens_out`, `workers`) on
//!   all four entry points, plus identical errors at identical points
//!   under a pull-budget sweep (0 / 1 / half / full−1 of the query's own
//!   pull count) and under tight buffer caps;
//! * the **Figure 1 interpreter** (`xq_core::eval_query`) — compared for
//!   bytes, so counter-compatibility can never drift away from semantic
//!   correctness.
//!
//! `buffered_sources` is the one counter allowed to move, monotonically:
//! the refactor *fixed* it to count held per-source decisions on every
//! path (the legacy engine missed decisions abandoned before the full
//! drain and counted nothing for planner-sharded loops), so the suite
//! asserts `new >= legacy` instead of equality. The new
//! `lazy_fallbacks`/`peak_buffered_tokens` counters have no legacy
//! counterpart and are regression-tested in the crate's unit suite.
//!
//! `XQ_RANDOM_CASES` scales the corpus (CI pins 16; local default 48);
//! CI runs the suite plain and under `XQ_ARENA=1 XQ_THREADS=4`
//! (`XQ_THREADS` adds a thread count to the parallel sweep). The
//! `#[ignore]`d full-size variant (weekly `scheduled.yml` run) sweeps a
//! 256-query corpus, bigger documents, and the doubling family.

use xq_bench::legacy_stream as legacy;

use cv_xtree::{random_tree, ArenaDoc, Token, Tree, TreeGen};
use xq_core::ast::Query;
use xq_core::Threads;
use xq_stream::{
    stream_query, stream_query_arena, stream_query_arena_par, stream_query_buffered,
    DEFAULT_BUFFER_LIMIT,
};

const FUEL: u64 = 10_000_000;

/// Cases per property: `XQ_RANDOM_CASES` if set (CI uses 16), else 48.
fn cases() -> usize {
    std::env::var("XQ_RANDOM_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// The seeded coverage corpus (deterministic across runs and PRs).
fn corpus() -> Vec<Query> {
    xq_bench::coverage_corpus(cases())
}

/// Small random documents over the corpus grammar's label alphabet. With
/// `XQ_ARENA=1` each document round-trips through the arena store, so
/// CI's arena pass covers arena-loaded documents on every entry point.
fn docs(nodes: usize) -> Vec<Tree> {
    let repr = xq_core::DocRepr::from_env();
    (0..3u64)
        .map(|seed| {
            let mut g = TreeGen::new(seed);
            repr.roundtrip(&random_tree(&mut g, nodes, &["a", "b", "k"]))
        })
        .collect()
}

/// Thread counts for the parallel sweep: 2/4 always, plus whatever
/// `XQ_THREADS` resolves to (CI's parallel pass sets 4).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![2, 4];
    let env = Threads::from_env().count();
    if env > 1 && !counts.contains(&env) {
        counts.push(env);
    }
    counts
}

type NewOut = Result<(Vec<Token>, xq_stream::StreamStats), xq_stream::StreamError>;
type OldOut = Result<(Vec<Token>, legacy::StreamStats), legacy::StreamError>;

/// Demands the refactored engine and the embedded pre-refactor engine
/// produced the *same outcome*: identical bytes and counters on success
/// (with `buffered_sources` allowed to grow, never shrink), or the same
/// error — which, combined with identical `pulls` charging, means the
/// same error at the same point.
fn assert_identical(new: &NewOut, old: &OldOut, ctx: &str) {
    match (new, old) {
        (Ok((nt, ns)), Ok((ot, os))) => {
            assert_eq!(nt, ot, "{ctx}: token stream");
            assert_eq!(ns.tokens_out, os.tokens_out, "{ctx}: tokens_out");
            assert_eq!(ns.pulls, os.pulls, "{ctx}: pulls");
            assert_eq!(
                ns.recomputations, os.recomputations,
                "{ctx}: recomputations"
            );
            assert_eq!(
                ns.peak_live_cursors, os.peak_live_cursors,
                "{ctx}: peak_live_cursors"
            );
            assert_eq!(ns.workers, os.workers, "{ctx}: workers");
            assert!(
                ns.buffered_sources >= os.buffered_sources,
                "{ctx}: buffered_sources regressed: new {} < legacy {}",
                ns.buffered_sources,
                os.buffered_sources
            );
        }
        // The two engines' error enums are distinct types with identical
        // variants; Debug form is the common currency.
        (Err(ne), Err(oe)) => assert_eq!(format!("{ne:?}"), format!("{oe:?}"), "{ctx}: error"),
        _ => panic!("{ctx}: outcomes diverge: new {new:?} vs legacy {old:?}"),
    }
}

/// The pull budgets to sweep for a query whose full run charged `pulls`:
/// 0 (error before the first pull), 1, half, and full−1 (error on the
/// very last charge) — both engines must fail identically at every one.
fn budget_sweep(pulls: u64) -> Vec<u64> {
    let mut caps = vec![0, 1, pulls / 2, pulls.saturating_sub(1)];
    caps.sort_unstable();
    caps.dedup();
    caps
}

/// The differential body shared by the quick and full-size suites.
fn assert_cursor_core_identical(q: &Query, doc: &Tree) {
    let arena = ArenaDoc::from_tree(doc);

    // Entry point 1: pure lazy streaming.
    let new = stream_query(q, doc, FUEL);
    let old = legacy::stream_query(q, doc, FUEL);
    assert_identical(&new, &old, &format!("lazy {q}"));

    // Semantic anchor: on success, bytes must also match the Figure 1
    // interpreter, so counter compatibility can't hide a shared bug.
    if let Ok((tokens, _)) = &new {
        let want: Vec<Token> = xq_core::eval_query(q, doc)
            .expect("interpreter evaluates the corpus")
            .iter()
            .flat_map(Tree::tokens)
            .collect();
        assert_eq!(tokens, &want, "interpreter disagrees on {q}");
    }

    // Entry point 2: buffered fast path, generous and degenerate caps.
    for cap in [DEFAULT_BUFFER_LIMIT, 1] {
        let new = stream_query_buffered(q, doc, FUEL, cap);
        let old = legacy::stream_query_buffered(q, doc, FUEL, cap);
        assert_identical(&new, &old, &format!("buffered cap {cap} {q}"));
    }

    // Entry point 3: arena source.
    let new = stream_query_arena(q, &arena, FUEL, DEFAULT_BUFFER_LIMIT);
    let old = legacy::stream_query_arena(q, &arena, FUEL, DEFAULT_BUFFER_LIMIT);
    assert_identical(&new, &old, &format!("arena {q}"));

    // Entry point 4: planner-sharded parallel streaming, incremental
    // merge vs the legacy materialized merge.
    for threads in thread_counts() {
        let new = stream_query_arena_par(q, &arena, FUEL, DEFAULT_BUFFER_LIMIT, threads);
        let old = legacy::stream_query_arena_par(q, &arena, FUEL, DEFAULT_BUFFER_LIMIT, threads);
        assert_identical(&new, &old, &format!("par t{threads} {q}"));
    }

    // Budget sweep: tighten max_pulls to bite before, at the start of,
    // midway through, and on the last charge of the run — the engines
    // must produce the same outcome (usually `Budget` at the same
    // point) on every entry point.
    if let Ok((_, stats)) = &old {
        for cap in budget_sweep(stats.pulls) {
            let new = stream_query(q, doc, cap);
            let old = legacy::stream_query(q, doc, cap);
            assert_identical(&new, &old, &format!("lazy budget {cap} {q}"));

            let new = stream_query_buffered(q, doc, cap, DEFAULT_BUFFER_LIMIT);
            let old = legacy::stream_query_buffered(q, doc, cap, DEFAULT_BUFFER_LIMIT);
            assert_identical(&new, &old, &format!("buffered budget {cap} {q}"));

            let new = stream_query_arena_par(q, &arena, cap, DEFAULT_BUFFER_LIMIT, 4);
            let old = legacy::stream_query_arena_par(q, &arena, cap, DEFAULT_BUFFER_LIMIT, 4);
            assert_identical(&new, &old, &format!("par budget {cap} {q}"));
        }
    }
}

#[test]
fn cursor_core_matches_legacy_engine_on_the_coverage_corpus() {
    let docs = docs(10);
    for q in corpus() {
        for doc in &docs {
            assert_cursor_core_identical(&q, doc);
        }
    }
}

/// `stream_boolean` has no stats to compare, but its short-circuit
/// behaviour (including the `⟨a⟩α⟨/a⟩` §7.1 special case) must agree
/// with the legacy engine verdict-for-verdict, errors included.
#[test]
fn boolean_probe_matches_legacy_engine() {
    let docs = docs(10);
    for q in corpus() {
        for doc in &docs {
            let new = xq_stream::stream_boolean(&q, doc, FUEL);
            let old = legacy::stream_boolean(&q, doc, FUEL);
            match (&new, &old) {
                (Ok(n), Ok(o)) => assert_eq!(n, o, "verdict for {q}"),
                (Err(ne), Err(oe)) => {
                    assert_eq!(format!("{ne:?}"), format!("{oe:?}"), "error for {q}")
                }
                _ => panic!("boolean outcomes diverge on {q}: {new:?} vs {old:?}"),
            }
        }
    }
}

/// Full-size variant for the weekly scheduled run: a 256-query corpus,
/// bigger documents, and the Prop 4.2 doubling family (where lazy
/// recomputation cost explodes and the buffered path's decisions all
/// engage).
#[test]
#[ignore = "full-size differential sweep; run by scheduled.yml"]
fn cursor_core_matches_legacy_engine_full_size() {
    let docs = docs(40);
    for q in xq_bench::coverage_corpus(256) {
        for doc in &docs {
            assert_cursor_core_identical(&q, doc);
        }
    }
    // The doubling family on the empty document: the streaming worst case.
    fn doubling(n: usize) -> String {
        let mut q = String::from("<z/>");
        for i in 0..n {
            q = format!("for $v{i} in ({q}, {q}) return <z/>");
        }
        q
    }
    let t = cv_xtree::parse_tree("<r/>").unwrap();
    for n in [2usize, 4, 6] {
        let q = xq_core::parse_query(&doubling(n)).unwrap();
        let new = stream_query(&q, &t, FUEL);
        let old = legacy::stream_query(&q, &t, FUEL);
        assert_identical(&new, &old, &format!("doubling lazy n={n}"));
        let new = stream_query_buffered(&q, &t, FUEL, DEFAULT_BUFFER_LIMIT);
        let old = legacy::stream_query_buffered(&q, &t, FUEL, DEFAULT_BUFFER_LIMIT);
        assert_identical(&new, &old, &format!("doubling buffered n={n}"));
    }
}
