//! E1/E2 (Lemma 5.7): reduction query sizes — Θ(K) with built-in =mon,
//! Θ(K²) with the defined =mon; ATM reduction linear in the rounds.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xq_reductions::{ntm, EqFlavor, NtmReduction};

fn bench(c: &mut Criterion) {
    let machine = ntm::zoo::first_is_one();
    let mut g = c.benchmark_group("reduction_sizes");
    g.sample_size(10);
    for k in [2u32, 4, 8] {
        g.bench_with_input(BenchmarkId::new("builtin_mon", k), &k, |b, &k| {
            b.iter(|| {
                NtmReduction::new(&machine, k, vec![1], EqFlavor::Builtin)
                    .accept_query()
                    .size()
            })
        });
        g.bench_with_input(BenchmarkId::new("defined_mon", k), &k, |b, &k| {
            b.iter(|| {
                NtmReduction::new(&machine, k, vec![1], EqFlavor::Defined)
                    .accept_query()
                    .size()
            })
        });
    }
    // Full evaluation at K=1 (the validated regime).
    g.bench_function("evaluate_k1", |b| {
        b.iter(|| {
            NtmReduction::new(&machine, 1, vec![1, 0], EqFlavor::Builtin)
                .run(cv_monad::Budget::large())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
