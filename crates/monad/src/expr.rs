//! Abstract syntax of monad algebra expressions.

use cv_value::{Atom, Value};
use std::fmt;
use std::rc::Rc;

/// Which equality predicate an [`Expr::Pred`]/[`Cond::Eq`] uses (§2.2, §5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum EqMode {
    /// `=atomic` — defined on atoms only.
    Atomic,
    /// `=mon` — the monotone extension of `=atomic` to collection-free
    /// values (Proposition 5.1). Treated as a built-in for the Lemma 5.7(b)
    /// linear-size reductions.
    Mon,
    /// `=deep` — full deep equality of complex values.
    Deep,
}

impl fmt::Display for EqMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EqMode::Atomic => "=atomic",
            EqMode::Mon => "=mon",
            EqMode::Deep => "=deep",
        })
    }
}

/// One side of a condition: an attribute path evaluated against the
/// context value, or a constant.
///
/// The paper's `(Ai = Aj)` predicate uses attribute operands; its proofs
/// freely use dotted paths (`σ_{1.V = 2.V}`, `π_{A1.···.Am}`, §5.2) and
/// comparisons against constants (`σ_{q =atomic f1}`), which by the remark
/// after Theorem 2.2 do not add expressive power.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A (possibly empty, possibly dotted) attribute path from the context
    /// value; the empty path denotes the context value itself.
    Path(Vec<Atom>),
    /// A constant complex value.
    Const(Value),
}

impl Operand {
    /// The context value itself (empty path).
    pub fn this() -> Operand {
        Operand::Path(Vec::new())
    }

    /// A dotted attribute path, given as `"A.B.C"` or single attribute.
    pub fn path(dotted: &str) -> Operand {
        if dotted.is_empty() {
            Operand::this()
        } else {
            Operand::Path(dotted.split('.').map(Atom::new).collect())
        }
    }

    /// A constant operand.
    pub fn konst(v: Value) -> Operand {
        Operand::Const(v)
    }

    /// A constant atom operand.
    pub fn atom(a: impl Into<Atom>) -> Operand {
        Operand::Const(Value::atom(a))
    }

    /// Number of syntax nodes, for query-size accounting.
    pub fn size(&self) -> u64 {
        match self {
            Operand::Path(p) => 1 + p.len() as u64,
            Operand::Const(v) => v.node_count(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Path(p) if p.is_empty() => f.write_str("id"),
            Operand::Path(p) => {
                for (i, a) in p.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Conditions for predicates ([`Expr::Pred`]) and selections
/// ([`Expr::Select`]): equalities, membership, containment, and Boolean
/// combinations (all covered by the remark following Theorem 2.2).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// `a = b` under the given equality mode.
    Eq(Operand, Operand, EqMode),
    /// `a ∈ b` — membership of `a`'s value in the collection `b`.
    In(Operand, Operand),
    /// `a ⊆ b` — containment between two collections.
    Subset(Operand, Operand),
    /// Conjunction.
    And(Rc<Cond>, Rc<Cond>),
    /// Disjunction.
    Or(Rc<Cond>, Rc<Cond>),
    /// Negation (only available in the nonmonotone language).
    Not(Rc<Cond>),
    /// The constant true condition.
    True,
}

impl Cond {
    /// `a = b` with [`EqMode::Atomic`].
    pub fn eq_atomic(a: Operand, b: Operand) -> Cond {
        Cond::Eq(a, b, EqMode::Atomic)
    }

    /// `a = b` with [`EqMode::Mon`].
    pub fn eq_mon(a: Operand, b: Operand) -> Cond {
        Cond::Eq(a, b, EqMode::Mon)
    }

    /// `a = b` with [`EqMode::Deep`].
    pub fn eq_deep(a: Operand, b: Operand) -> Cond {
        Cond::Eq(a, b, EqMode::Deep)
    }

    /// Conjunction helper.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Rc::new(self), Rc::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Rc::new(self), Rc::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Cond {
        Cond::Not(Rc::new(self))
    }

    /// Logical biconditional `a ⇔ b`, desugared to `(a∧b) ∨ (¬a∧¬b)` — used
    /// by the Theorem 5.9 selector `σ_{1.C.q∈Q∃ ⇔ 2.C.q∈Q∃}`.
    pub fn iff(a: Cond, b: Cond) -> Cond {
        a.clone().and(b.clone()).or(a.negate().and(b.negate()))
    }

    /// Disjunction of a nonempty list of conditions.
    pub fn any(conds: impl IntoIterator<Item = Cond>) -> Cond {
        let mut it = conds.into_iter();
        let first = it.next().expect("Cond::any of an empty list");
        it.fold(first, |acc, c| acc.or(c))
    }

    /// Conjunction of a nonempty list of conditions.
    pub fn all(conds: impl IntoIterator<Item = Cond>) -> Cond {
        let mut it = conds.into_iter();
        let first = it.next().expect("Cond::all of an empty list");
        it.fold(first, |acc, c| acc.and(c))
    }

    /// Whether the condition uses negation (`Not`), which takes an
    /// expression outside the monotone fragment.
    pub fn uses_negation(&self) -> bool {
        match self {
            Cond::Not(_) => true,
            Cond::And(a, b) | Cond::Or(a, b) => a.uses_negation() || b.uses_negation(),
            _ => false,
        }
    }

    /// Number of syntax nodes.
    pub fn size(&self) -> u64 {
        match self {
            Cond::Eq(a, b, _) | Cond::In(a, b) | Cond::Subset(a, b) => 1 + a.size() + b.size(),
            Cond::And(a, b) | Cond::Or(a, b) => 1 + a.size() + b.size(),
            Cond::Not(a) => 1 + a.size(),
            Cond::True => 1,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Eq(a, b, m) => write!(f, "{a} {m} {b}"),
            Cond::In(a, b) => write!(f, "{a} in {b}"),
            Cond::Subset(a, b) => write!(f, "{a} subseteq {b}"),
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Not(a) => write!(f, "not({a})"),
            Cond::True => f.write_str("true"),
        }
    }
}

/// A monad algebra expression, denoting a function from values to values.
///
/// Composition is written in the paper's diagrammatic order:
/// `(f ∘ g)(x) = g(f(x))` — `f` runs first.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// `id : τ → τ`.
    Id,
    /// Composition `f ∘ g` (apply `f`, then `g`).
    Compose(Rc<Expr>, Rc<Expr>),
    /// A constant from `Dom ∪ {∅, ⟨⟩}` or any other value literal
    /// (Proposition 4.1: values can be built from scratch anyway).
    Const(Value),
    /// The polymorphic empty collection `∅` / `[]` / `{||}` — its kind is
    /// the evaluator's collection kind.
    EmptyColl,
    /// Singleton construction `sng : τ → {τ}`.
    Sng,
    /// `map(f) : {τ} → {τ′}` applies `f` to every member.
    Map(Rc<Expr>),
    /// `flatten : {{τ}} → {τ}` (union / concatenation / additive union).
    Flatten,
    /// `pairwith_A : ⟨A: {τ}, ...⟩ → {⟨A: τ, ...⟩}` (tensorial strength).
    PairWith(Atom),
    /// Tuple formation `⟨A1: f1, ..., An: fn⟩`.
    MkTuple(Vec<(Atom, Expr)>),
    /// Projection `π_A` on tuples.
    Proj(Atom),
    /// Union `f ∪ g : x ↦ f(x) ∪ g(x)`.
    Union(Rc<Expr>, Rc<Expr>),
    /// A predicate `γ : τ → {⟨⟩}` from a condition on the input value
    /// (covers the paper's `(Ai = Aj)`, `(A ∈ B)`, `(A ⊆ B)`).
    Pred(Cond),
    /// Selection `σ_γ : {τ} → {τ}` keeping members satisfying `γ`.
    Select(Cond),
    /// Boolean negation `not : {τ} → {⟨⟩}` — empty ↦ true, nonempty ↦ false.
    Not,
    /// The `true` operation of §2.3: nonempty ↦ `[⟨⟩]`, empty ↦ `[]`.
    /// (Duplicate-eliminating truth-value normalizer.)
    True,
    /// Difference `f − g`: members of `f(x)` with no `=deep`-equal member
    /// in `g(x)` (order/multiplicity from `f(x)`, cf. Prop 5.13).
    Diff(Rc<Expr>, Rc<Expr>),
    /// Intersection `f ∩ g`: members of `f(x)` with an `=deep`-equal member
    /// in `g(x)`.
    Intersect(Rc<Expr>, Rc<Expr>),
    /// `nest_{A=(B1,...,Bm)}`: group a collection of tuples by all
    /// attributes *not* in `collect`, gathering the `collect` attributes
    /// into a collection named `into` (footnote 5).
    Nest {
        /// Attributes gathered into the nested collection.
        collect: Vec<Atom>,
        /// Name of the new collection-valued attribute.
        into: Atom,
    },
    /// Bag monus `f monus g` (§2.3): multiplicity `max(0, #f − #g)`.
    Monus(Rc<Expr>, Rc<Expr>),
    /// Bag duplicate elimination `unique` (§2.3). On lists, keeps first
    /// occurrences; on sets it is the identity.
    Unique,
    /// `descmap` (Theorem 5.5): on a value `C(t)` encoding a tree (a tuple
    /// `⟨label: a, children: [...]⟩`), the collection of encodings of all
    /// subtrees of `t` — `t` itself first, then descendants in document
    /// order.
    DescMap,
}

impl Expr {
    /// Composition in application order: `self ∘ next` (self runs first).
    pub fn then(self, next: Expr) -> Expr {
        Expr::Compose(Rc::new(self), Rc::new(next))
    }

    /// `map(self)`.
    pub fn mapped(self) -> Expr {
        Expr::Map(Rc::new(self))
    }

    /// `f ∪ g`.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Rc::new(self), Rc::new(other))
    }

    /// Constant atom.
    pub fn atom(a: impl Into<Atom>) -> Expr {
        Expr::Const(Value::atom(a))
    }

    /// Constant value.
    pub fn konst(v: Value) -> Expr {
        Expr::Const(v)
    }

    /// Projection.
    pub fn proj(a: impl Into<Atom>) -> Expr {
        Expr::Proj(a.into())
    }

    /// Projection along a dotted path `π_{A1.···.Am}` (§5.2 footnote 13):
    /// `π_{A1} ∘ ··· ∘ π_{Am}`.
    pub fn proj_path(dotted: &str) -> Expr {
        let mut segs = dotted.split('.');
        let first = Expr::proj(segs.next().expect("empty projection path"));
        segs.fold(first, |acc, s| acc.then(Expr::proj(s)))
    }

    /// `pairwith_A`.
    pub fn pairwith(a: impl Into<Atom>) -> Expr {
        Expr::PairWith(a.into())
    }

    /// Tuple formation helper.
    pub fn mk_tuple<I, S>(fields: I) -> Expr
    where
        I: IntoIterator<Item = (S, Expr)>,
        S: Into<Atom>,
    {
        Expr::MkTuple(fields.into_iter().map(|(n, e)| (n.into(), e)).collect())
    }

    /// `flatmap(f) = map(f) ∘ flatten` (§2.2).
    pub fn flatmap(f: Expr) -> Expr {
        f.mapped().then(Expr::Flatten)
    }

    /// Composition of a chain of expressions, in application order.
    pub fn chain(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = parts.into_iter();
        let first = it.next().expect("Expr::chain of an empty sequence");
        it.fold(first, Expr::then)
    }

    /// Flattens nested compositions into the linear pipeline
    /// `[f1, f2, ..., fn]` with `f1` applied first.
    pub fn pipeline(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Compose(f, g) => {
                    walk(f, out);
                    walk(g, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Number of operator nodes — the `|Q|` of the paper's size arguments.
    pub fn size(&self) -> u64 {
        match self {
            Expr::Id
            | Expr::EmptyColl
            | Expr::Sng
            | Expr::Flatten
            | Expr::Not
            | Expr::True
            | Expr::Unique
            | Expr::DescMap => 1,
            Expr::Const(v) => v.node_count(),
            Expr::Proj(_) | Expr::PairWith(_) => 1,
            Expr::Compose(f, g) => f.size() + g.size(),
            Expr::Map(f) => 1 + f.size(),
            Expr::MkTuple(fs) => 1 + fs.iter().map(|(_, e)| e.size()).sum::<u64>(),
            Expr::Union(f, g) | Expr::Diff(f, g) | Expr::Intersect(f, g) | Expr::Monus(f, g) => {
                1 + f.size() + g.size()
            }
            Expr::Pred(c) | Expr::Select(c) => 1 + c.size(),
            Expr::Nest { collect, .. } => 1 + collect.len() as u64,
        }
    }

    /// Whether the expression stays in the monotone fragment
    /// `M∪[=atomic]` — no `not`, no deep equality, no difference/monus.
    pub fn is_monotone(&self) -> bool {
        match self {
            Expr::Not | Expr::Diff(_, _) | Expr::Monus(_, _) => false,
            Expr::Pred(c) | Expr::Select(c) => !c.uses_negation() && !cond_uses_deep(c),
            Expr::Compose(f, g) | Expr::Union(f, g) | Expr::Intersect(f, g) => {
                f.is_monotone() && g.is_monotone()
            }
            Expr::Map(f) => f.is_monotone(),
            Expr::MkTuple(fs) => fs.iter().all(|(_, e)| e.is_monotone()),
            _ => true,
        }
    }
}

fn cond_uses_deep(c: &Cond) -> bool {
    match c {
        Cond::Eq(_, _, EqMode::Deep) => true,
        // ∈ and ⊆ compare complex values deeply.
        Cond::In(_, _) | Cond::Subset(_, _) => true,
        Cond::And(a, b) | Cond::Or(a, b) => cond_uses_deep(a) || cond_uses_deep(b),
        Cond::Not(a) => cond_uses_deep(a),
        _ => false,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Id => f.write_str("id"),
            Expr::Compose(a, b) => write!(f, "{a} o {b}"),
            Expr::Const(v) => write!(f, "const({v})"),
            Expr::EmptyColl => f.write_str("empty"),
            Expr::Sng => f.write_str("sng"),
            Expr::Map(e) => write!(f, "map({e})"),
            Expr::Flatten => f.write_str("flatten"),
            Expr::PairWith(a) => write!(f, "pairwith[{a}]"),
            Expr::MkTuple(fs) => {
                f.write_str("<")?;
                for (i, (n, e)) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {e}")?;
                }
                f.write_str(">")
            }
            Expr::Proj(a) => write!(f, "pi[{a}]"),
            Expr::Union(a, b) => write!(f, "({a} U {b})"),
            Expr::Pred(c) => write!(f, "pred[{c}]"),
            Expr::Select(c) => write!(f, "sigma[{c}]"),
            Expr::Not => f.write_str("not"),
            Expr::True => f.write_str("true"),
            Expr::Diff(a, b) => write!(f, "({a} - {b})"),
            Expr::Intersect(a, b) => write!(f, "({a} & {b})"),
            Expr::Nest { collect, into } => {
                write!(f, "nest[{into}=(")?;
                for (i, a) in collect.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")]")
            }
            Expr::Monus(a, b) => write!(f, "({a} monus {b})"),
            Expr::Unique => f.write_str("unique"),
            Expr::DescMap => f.write_str("descmap"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_linearizes_compositions() {
        let e = Expr::chain([Expr::Id, Expr::Sng, Expr::Flatten]);
        let pipe = e.pipeline();
        assert_eq!(pipe.len(), 3);
        assert_eq!(pipe[0], &Expr::Id);
        assert_eq!(pipe[2], &Expr::Flatten);
    }

    #[test]
    fn size_counts_operators() {
        assert_eq!(Expr::Id.size(), 1);
        assert_eq!(Expr::Id.then(Expr::Sng).size(), 2);
        assert_eq!(Expr::Sng.mapped().size(), 2);
        let t = Expr::mk_tuple([("A", Expr::Id), ("B", Expr::Sng)]);
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn proj_path_builds_composition() {
        let e = Expr::proj_path("A.B.C");
        assert_eq!(e.pipeline().len(), 3);
        assert_eq!(e.to_string(), "pi[A] o pi[B] o pi[C]");
    }

    #[test]
    fn monotone_fragment_detection() {
        assert!(Expr::Sng.is_monotone());
        assert!(!Expr::Not.is_monotone());
        let sel_atomic = Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::path("B")));
        assert!(sel_atomic.is_monotone());
        let sel_deep = Expr::Select(Cond::eq_deep(Operand::path("A"), Operand::path("B")));
        assert!(!sel_deep.is_monotone());
        let not_in_cond =
            Expr::Select(Cond::eq_atomic(Operand::path("A"), Operand::path("B")).negate());
        assert!(!not_in_cond.is_monotone());
        assert!(!Expr::Diff(Rc::new(Expr::Id), Rc::new(Expr::Id)).is_monotone());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::flatmap(Expr::pairwith("2"));
        assert_eq!(e.to_string(), "map(pairwith[2]) o flatten");
        let c = Cond::eq_atomic(Operand::path("1.V"), Operand::path("2.V"));
        assert_eq!(Expr::Select(c).to_string(), "sigma[1.V =atomic 2.V]");
    }

    #[test]
    fn iff_desugars_to_boolean_combination() {
        let a = Cond::True;
        let b = Cond::True;
        let c = Cond::iff(a, b);
        assert!(matches!(c, Cond::Or(_, _)));
    }

    #[test]
    fn cond_helpers() {
        let c = Cond::any([Cond::True, Cond::True, Cond::True]);
        assert_eq!(c.size(), 5);
        let c = Cond::all([Cond::True, Cond::True]);
        assert_eq!(c.size(), 3);
        assert!(Cond::True.negate().uses_negation());
        assert!(!Cond::True.uses_negation());
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::this().to_string(), "id");
        assert_eq!(Operand::path("A.B").to_string(), "A.B");
        assert_eq!(Operand::atom("q0").to_string(), "q0");
    }
}
