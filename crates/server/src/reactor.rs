//! A minimal, `std`-only readiness reactor: epoll + eventfd over raw
//! syscalls.
//!
//! The workspace is offline — no `libc`, no `mio` — so the three kernel
//! facilities the front door needs are bound by hand:
//!
//! * [`Poller`] — an `epoll` instance. Sockets register with a `u64`
//!   token and a read/write interest pair; [`Poller::wait`] parks the
//!   reactor thread until something is ready (level-triggered, so
//!   nothing is lost if a readiness notification is only half-consumed).
//! * [`WakeFd`] — an `eventfd` the pool workers write to announce
//!   completions. It registers with the poller like any socket, which is
//!   what lets ONE `epoll_wait` observe both socket readiness and
//!   eval-pool completions — the heart of the fixed-thread-count design.
//!
//! Only the five syscalls the reactor needs are bound (`epoll_create1`,
//! `epoll_ctl`, `epoll_pwait`, `eventfd2`, plus `read`/`write` for the
//! eventfd counter), via `asm!` on x86-64 and aarch64 Linux. Everything
//! else — nonblocking sockets, accept, socket reads/writes, fd lifetime
//! (`OwnedFd` closes on drop) — stays on portable `std`.

#[cfg(not(target_os = "linux"))]
compile_error!(
    "xq_server's reactor front door multiplexes connections with epoll and \
     therefore requires Linux (the workspace is offline, so no portable \
     polling crate is available to fall back on)"
);

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::{Duration, Instant};

/// Raw syscall numbers for the two supported architectures.
#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
compile_error!("the reactor's raw syscall shim covers x86-64 and aarch64 only");

/// One raw syscall, up to six arguments. Returns the kernel's `rax`/`x0`
/// verbatim: values in `[-4095, -1]` are `-errno`.
///
/// # Safety
///
/// The caller must pass argument values valid for the specific syscall
/// (live fds, pointers to appropriately-sized buffers).
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

/// See the x86-64 variant; aarch64 passes the number in `x8`.
///
/// # Safety
///
/// As for the x86-64 variant.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    std::arch::asm!(
        "svc #0",
        in("x8") n,
        inlateout("x0") a as isize => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack)
    );
    ret
}

/// Converts a raw syscall return into `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// epoll_ctl ops and event bits (uapi/linux/eventpoll.h).
const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the one ABI
/// where the kernel declares it `__attribute__((packed))`).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// One readiness notification, decoded.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or at EOF — a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the connection is unusable; reads/writes will
    /// fail promptly rather than block, so treating this as
    /// readable+writable and letting the I/O calls report is sound.
    pub hangup: bool,
}

/// An epoll instance owning its fd.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
        let ptr = ev
            .as_ref()
            .map_or(std::ptr::null(), |e| e as *const EpollEvent);
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.epfd.as_raw_fd() as usize,
                op,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })
        .map(drop)
    }

    fn interest(token: u64, readable: bool, writable: bool) -> EpollEvent {
        // Level-triggered (no EPOLLET): a half-drained buffer re-arms on
        // the next wait, so the reactor can bound per-connection work
        // per round without losing data. EPOLLERR/EPOLLHUP are always
        // reported regardless of the mask.
        let mut events = 0;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        EpollEvent {
            events,
            data: token,
        }
    }

    /// Registers `fd` under `token` with the given interests.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(Self::interest(token, readable, writable)),
        )
    }

    /// Replaces `fd`'s interests (token may change too).
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(Self::interest(token, readable, writable)),
        )
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, up to `timeout_ms` milliseconds (`-1` blocks
    /// indefinitely, `0` polls). Decoded notifications are appended to
    /// `out` (cleared first). EINTR retries internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let mut buf = [EpollEvent::default(); 64];
        let n = loop {
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.epfd.as_raw_fd() as usize,
                    buf.as_mut_ptr() as usize,
                    buf.len(),
                    timeout_ms as usize,
                    0, // sigmask: null — plain epoll_wait semantics
                    8, // sigsetsize (ignored with a null mask)
                )
            };
            match check(ret) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

/// A nonblocking eventfd: the reactor's wake channel. `wake()` is safe
/// from any thread (pool workers, `Server::shutdown`); the reactor
/// registers the fd readable and `drain()`s it once woken.
pub struct WakeFd {
    fd: OwnedFd,
}

impl WakeFd {
    /// Creates the eventfd (counter 0, nonblocking, cloexec).
    pub fn new() -> io::Result<WakeFd> {
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(WakeFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// The fd to register with a [`Poller`].
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Adds 1 to the counter, making the fd readable. A full counter
    /// (`EAGAIN`) already guarantees a pending wake, so errors are moot.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = check(unsafe {
            syscall6(
                nr::WRITE,
                self.fd.as_raw_fd() as usize,
                (&one as *const u64) as usize,
                8,
                0,
                0,
                0,
            )
        });
    }

    /// Zeroes the counter (nonblocking: a bare `EAGAIN` means it already
    /// was zero). One drain absorbs any number of coalesced wakes.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        let _ = check(unsafe {
            syscall6(
                nr::READ,
                self.fd.as_raw_fd() as usize,
                (&mut buf as *mut u64) as usize,
                8,
                0,
                0,
                0,
            )
        });
    }
}

/// A lazy hashed timer wheel for coarse connection deadlines (idle
/// timeouts). Entries hash into `slots.len()` rings by due time at
/// `granularity` resolution; [`TimerWheel::expire`] advances the cursor
/// one granule at a time, draining each slot it passes and *cascading*
/// (reinserting) entries that only landed there because their deadline
/// was more than a full revolution out. Precision is deliberately one
/// granule — idle timeouts don't need better, and the wheel costs O(1)
/// per insert and O(expired) per sweep instead of a heap's O(log n).
///
/// Deadlines are *advisory*: the owner re-checks liveness when an entry
/// expires and reinserts if the connection saw traffic since — so
/// nothing need ever be removed early, which is what keeps the wheel
/// this simple.
pub struct TimerWheel {
    granularity: Duration,
    slots: Vec<Vec<(u64, Instant)>>,
    cursor: usize,
    /// The time the cursor slot represents; advances in whole granules.
    cursor_time: Instant,
    len: usize,
}

impl TimerWheel {
    /// A wheel of `slots` rings at `granularity` resolution (both
    /// floored to sane minimums).
    pub fn new(granularity: Duration, slots: usize) -> TimerWheel {
        TimerWheel {
            granularity: granularity.max(Duration::from_millis(1)),
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_time: Instant::now(),
            len: 0,
        }
    }

    /// The wheel's resolution — also the longest an expiry can be late.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }

    /// True iff no deadline is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tracks `deadline` for `token`. Multiple deadlines per token are
    /// fine (the owner dedups on expiry).
    pub fn insert(&mut self, token: u64, deadline: Instant) {
        let ticks = (deadline
            .saturating_duration_since(self.cursor_time)
            .as_nanos()
            / self.granularity.as_nanos()) as usize;
        // At least one tick out (the cursor slot has already been
        // drained for this revolution — an entry placed there would wait
        // a full turn); at most a revolution minus one (farther
        // deadlines cascade when the cursor reaches them).
        let ticks = ticks.clamp(1, self.slots.len() - 1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push((token, deadline));
        self.len += 1;
    }

    /// Advances the wheel to `now`, appending every token whose deadline
    /// has passed to `out`. Not-yet-due entries in passed slots cascade
    /// back in (their deadline was beyond one revolution).
    pub fn expire(&mut self, now: Instant, out: &mut Vec<u64>) {
        if self.len == 0 {
            // Idle wheel: snap to now so a long quiet period doesn't
            // make the next insert's tick arithmetic walk every slot.
            self.cursor_time = now;
            return;
        }
        while self.cursor_time + self.granularity <= now {
            self.cursor_time += self.granularity;
            self.cursor = (self.cursor + 1) % self.slots.len();
            let entries = std::mem::take(&mut self.slots[self.cursor]);
            for (token, deadline) in entries {
                self.len -= 1;
                if deadline <= now {
                    out.push(token);
                } else {
                    self.insert(token, deadline);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_wakes_the_poller_and_drain_rearms() {
        let poller = Poller::new().unwrap();
        let wake = WakeFd::new().unwrap();
        poller.add(wake.raw(), 7, true, false).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait returns empty.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
        // Wakes coalesce into one readable notification under the token.
        wake.wake();
        wake.wake();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Drained: quiet again.
        wake.drain();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_reports_reads_writes_and_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), 42, true, true).unwrap();
        let mut events = Vec::new();
        // A fresh connected socket is writable but not readable.
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable && !events[0].readable);
        // Narrow interest to reads only: quiet until the peer sends.
        poller.modify(client.as_raw_fd(), 42, true, false).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
        served.write_all(b"hi").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        let mut c = &client;
        assert_eq!(c.read(&mut buf).unwrap(), 2);
        // Peer close: level-triggered EPOLLIN persists at EOF.
        drop(served);
        poller.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        assert_eq!(c.read(&mut buf).unwrap(), 0, "EOF");
        poller.delete(client.as_raw_fd()).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timer_wheel_expires_at_granularity_precision() {
        let start = Instant::now();
        let gran = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(gran, 8);
        assert!(wheel.is_empty());
        wheel.insert(1, start + Duration::from_millis(25));
        wheel.insert(2, start + Duration::from_millis(45));
        assert!(!wheel.is_empty());
        let mut due = Vec::new();
        // Nothing due yet.
        wheel.expire(start + Duration::from_millis(9), &mut due);
        assert!(due.is_empty());
        // Past the first deadline (plus a granule of slack): 1 fires,
        // 2 does not.
        wheel.expire(start + Duration::from_millis(36), &mut due);
        assert_eq!(due, vec![1]);
        due.clear();
        wheel.expire(start + Duration::from_millis(60), &mut due);
        assert_eq!(due, vec![2]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn timer_wheel_near_deadlines_never_wait_a_revolution() {
        // An entry due *now* (or in the past) lands one tick out, not in
        // the already-drained cursor slot — the classic off-by-one that
        // makes near deadlines wait slots.len() granules.
        let start = Instant::now();
        let gran = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(gran, 64);
        wheel.insert(7, start);
        let mut due = Vec::new();
        wheel.expire(start + Duration::from_millis(15), &mut due);
        assert_eq!(due, vec![7], "a past-due entry fires within one granule");
    }

    #[test]
    fn timer_wheel_cascades_deadlines_beyond_one_revolution() {
        let start = Instant::now();
        let gran = Duration::from_millis(10);
        // 4 slots × 10ms = one 40ms revolution; a 95ms deadline must
        // cascade at least twice before firing.
        let mut wheel = TimerWheel::new(gran, 4);
        wheel.insert(9, start + Duration::from_millis(95));
        let mut due = Vec::new();
        wheel.expire(start + Duration::from_millis(50), &mut due);
        assert!(due.is_empty(), "one revolution in, not due");
        wheel.expire(start + Duration::from_millis(90), &mut due);
        assert!(due.is_empty(), "two revolutions in, still not due");
        wheel.expire(start + Duration::from_millis(110), &mut due);
        assert_eq!(due, vec![9]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn timer_wheel_idle_snap_keeps_inserts_cheap_after_quiet_periods() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8);
        let mut due = Vec::new();
        // A long empty sweep snaps the cursor to now instead of walking
        // granule by granule; the next insert then lands relative to the
        // snapped time and still fires on schedule.
        wheel.expire(start + Duration::from_secs(3600), &mut due);
        let now = start + Duration::from_secs(3600);
        wheel.insert(3, now + Duration::from_millis(20));
        wheel.expire(now + Duration::from_millis(45), &mut due);
        assert_eq!(due, vec![3]);
    }
}
