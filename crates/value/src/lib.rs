//! Complex values in the sense of Koch (PODS 2005), Section 2.2/2.3.
//!
//! A *complex value* is built from atomic values (a single-sorted domain of
//! symbols), tuples with named attributes, and homogeneous collections:
//! sets, lists, and bags. The paper studies monad algebra over all three
//! collection monads; this crate provides the shared value representation.
//!
//! # Representation invariants
//!
//! * Values are immutable and cheap to clone: [`Value`] wraps an `Rc`, so a
//!   clone is a reference-count bump. Monad algebra is pure, so structural
//!   sharing is always sound.
//! * Sets are stored in canonical form (sorted by the structural total
//!   order, duplicates removed). Bags are stored sorted. Consequently the
//!   derived `PartialEq` *is* the paper's deep equality `=deep` for sets and
//!   bags, and list equality is positional equality, exactly as in §2.3.
//!
//! # Equality forms
//!
//! The paper distinguishes three equality predicates, all provided here:
//!
//! * [`Value::deep_eq`] — `=deep`, equality of arbitrary complex values;
//! * [`Value::atomic_eq`] — `=atomic`, defined only on two atoms;
//! * [`Value::mon_eq`] — `=mon`, the monotone generalization to
//!   collection-free values (atoms and nested tuples, Proposition 5.1).

mod atom;
mod parse;
mod ty;
mod value;

pub use atom::Atom;
pub use parse::{parse_type, parse_value, ParseError};
pub use ty::Type;
pub use value::{CollectionKind, Value, ValueKind};

/// Errors raised by partial operations on values (projections on non-tuples,
/// equality forms applied outside their domain, and so on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// A tuple operation was applied to a non-tuple value.
    NotATuple(String),
    /// A collection operation was applied to a non-collection value.
    NotACollection(String),
    /// A tuple projection referenced an attribute that is not present.
    NoSuchAttribute(String),
    /// `=atomic` was applied to a non-atomic operand.
    NotAtomic(String),
    /// `=mon` was applied to a value containing a collection.
    NotMonotoneComparable(String),
    /// Collections of mixed kinds (e.g. a set and a list) were combined.
    MixedCollectionKinds(String),
}

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueError::NotATuple(v) => write!(f, "expected a tuple, got {v}"),
            ValueError::NotACollection(v) => write!(f, "expected a collection, got {v}"),
            ValueError::NoSuchAttribute(a) => write!(f, "no such attribute: {a}"),
            ValueError::NotAtomic(v) => write!(f, "expected an atomic value, got {v}"),
            ValueError::NotMonotoneComparable(v) => {
                write!(f, "=mon is undefined on values containing collections: {v}")
            }
            ValueError::MixedCollectionKinds(m) => write!(f, "mixed collection kinds: {m}"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = ValueError::NoSuchAttribute("A".into());
        assert!(e.to_string().contains("A"));
        let e = ValueError::NotAtomic("{1}".into());
        assert!(e.to_string().contains("atomic"));
    }
}
