//! Graceful-drain contracts for [`Server::shutdown`] (and `Drop`):
//!
//! * an idle connected client must not block shutdown (pre-reactor, the
//!   per-connection reader thread sat in `lines()` forever and leaked);
//! * work queued and in flight at shutdown is answered in full when it
//!   fits inside the drain deadline;
//! * work that outlives the deadline is cancelled, its `cancelled`
//!   response still delivered;
//! * `query` frames arriving during the drain are refused with the
//!   `shutting_down` code, and new connections are refused outright.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cv_xtree::{parse_tree, ArenaDoc};
use xq_core::{Budget, Threads};
use xq_server::{Server, ServerConfig};

fn docs() -> HashMap<String, Arc<ArenaDoc>> {
    let tree = parse_tree("<r><a/><b><k/></b><k/></r>").unwrap();
    let mut docs = HashMap::new();
    docs.insert("d0".to_string(), Arc::new(ArenaDoc::from_tree(&tree)));
    docs
}

fn unlimited_tenant() -> HashMap<String, Budget> {
    let mut tenants = HashMap::new();
    tenants.insert(
        "slow".to_string(),
        Budget {
            max_steps: u64::MAX,
            max_items: u64::MAX,
            threads: Threads::One,
            ..Budget::default()
        },
    );
    tenants
}

/// A query whose full run is astronomically long (3^20+ iterations):
/// only cancellation ends it.
fn infinite_query() -> String {
    (1..=20)
        .map(|i| format!("for $v{i} in $root//* return "))
        .collect::<String>()
        + "<t/>"
}

fn connect(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn send(w: &mut TcpStream, line: &str) {
    w.write_all(line.as_bytes()).expect("send");
    w.write_all(b"\n").expect("send");
}

fn recv(r: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = r.read_line(&mut line).expect("recv");
    assert!(n > 0, "unexpected EOF");
    line.trim_end_matches('\n').to_string()
}

/// The idle-client regression: drop must return promptly with every
/// thread joined, even though a client is connected and silent. The
/// pre-reactor server leaked a reader thread blocked in `lines()` here.
#[test]
fn drop_with_idle_client_returns_promptly() {
    let server = Server::start(ServerConfig {
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let (mut reader, mut writer) = connect(&server);
    send(&mut writer, r#"{"op":"hello","tenant":"t"}"#);
    let hello = recv(&mut reader);
    assert!(hello.contains(r#""ok":true"#));
    let t0 = Instant::now();
    drop(server);
    // Nothing was in flight: the drain must exit immediately, well
    // inside the (1s default) drain deadline.
    assert!(
        t0.elapsed() < Duration::from_millis(900),
        "idle drain took {:?}",
        t0.elapsed()
    );
    // The server closed our connection on its way out.
    let mut rest = String::new();
    let n = reader.read_line(&mut rest).expect("read after shutdown");
    assert_eq!(n, 0, "expected EOF after shutdown, got {rest:?}");
}

/// Work that fits inside the drain deadline is answered in full: one
/// worker, one running query, three queued behind it — shutdown waits
/// for all four answers to flush before closing.
#[test]
fn drain_answers_queued_work_within_the_deadline() {
    let server = Server::start(ServerConfig {
        workers: 1,
        tenants: unlimited_tenant(),
        drain_deadline: Duration::from_secs(20),
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let (mut reader, mut writer) = connect(&server);
    send(&mut writer, r#"{"op":"hello","tenant":"slow"}"#);
    let _ = recv(&mut reader);
    // A finite but non-trivial head query (4^8 ≈ 65k iterations) keeps
    // the single worker busy while the three fast ones queue up.
    let head: String = (1..=8)
        .map(|i| format!("for $v{i} in $root//* return "))
        .collect::<String>()
        + "<t/>";
    send(
        &mut writer,
        &format!(r#"{{"op":"query","id":1,"doc":"d0","query":"{head}"}}"#),
    );
    for id in 2..=4 {
        send(
            &mut writer,
            &format!(r#"{{"op":"query","id":{id},"doc":"d0","query":"$root/b/k"}}"#),
        );
    }
    // All four must be accepted before shutdown starts refusing frames.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.queue_depth() + server.in_flight() < 4 {
        assert!(Instant::now() < deadline, "queries were never accepted");
        std::thread::sleep(Duration::from_millis(2));
    }
    // The client keeps reading while shutdown blocks this thread —
    // drain must deliver all four answers, then EOF.
    let collector = std::thread::spawn(move || {
        let mut lines = Vec::new();
        for _ in 0..4 {
            lines.push(recv(&mut reader));
        }
        let mut rest = String::new();
        let n = reader.read_line(&mut rest).expect("read after drain");
        assert_eq!(n, 0, "expected EOF after drain, got {rest:?}");
        lines
    });
    let mut server = server;
    let t0 = Instant::now();
    server.shutdown();
    let ids = collector.join().expect("collector");
    for id in 1..=4 {
        assert!(
            ids[id - 1].contains(r#""ok":true"#) && ids[id - 1].contains(&format!(r#""id":{id}"#)),
            "responses wrong or out of order: {ids:?}"
        );
    }
    // The work finished long before the 20s deadline; drain must not
    // have waited it out.
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "drain waited for the deadline despite finished work"
    );
}

/// Work that outlives the drain deadline is cancelled (its `cancelled`
/// answer still delivered), a `query` frame sent mid-drain is refused
/// with `shutting_down`, and new connections are refused once the
/// listener closes.
#[test]
fn drain_cancels_in_flight_past_deadline_and_refuses_late_frames() {
    let server = Server::start(ServerConfig {
        workers: 1,
        tenants: unlimited_tenant(),
        drain_deadline: Duration::from_millis(800),
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    // Client A pins the worker with an un-finishable query.
    let (mut a_reader, mut a_writer) = connect(&server);
    send(&mut a_writer, r#"{"op":"hello","tenant":"slow"}"#);
    let _ = recv(&mut a_reader);
    send(
        &mut a_writer,
        &format!(
            r#"{{"op":"query","id":1,"doc":"d0","query":"{}"}}"#,
            infinite_query()
        ),
    );
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.in_flight() == 0 {
        assert!(Instant::now() < deadline, "query was never picked up");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Client B is connected before the drain begins.
    let (mut b_reader, mut b_writer) = connect(&server);
    send(&mut b_writer, r#"{"op":"hello","tenant":"t"}"#);
    let _ = recv(&mut b_reader);
    // Shutdown blocks until the drain completes — run it on its own
    // thread while the clients observe the drain from outside.
    let mut server = server;
    let shutdown = std::thread::spawn(move || {
        let t0 = Instant::now();
        server.shutdown();
        let cancelled = server
            .stats()
            .cancelled
            .load(std::sync::atomic::Ordering::Relaxed);
        (t0.elapsed(), cancelled)
    });
    // Give the reactor a moment to observe shutdown and close the door.
    std::thread::sleep(Duration::from_millis(200));
    // Late query frames on live connections: refused, not queued.
    send(
        &mut b_writer,
        r#"{"op":"query","id":7,"doc":"d0","query":"$root/*"}"#,
    );
    let refused = recv(&mut b_reader);
    assert!(
        refused.contains(r#""code":"shutting_down""#),
        "late frame not refused: {refused}"
    );
    // New connections: the listener is closed.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener still accepting during drain"
    );
    // Client A's pinned query is cancelled at the deadline and the
    // answer still arrives before the connection closes.
    let resp = recv(&mut a_reader);
    assert!(
        resp.contains(r#""code":"cancelled""#) && resp.contains(r#""id":1"#),
        "pinned query not cancelled at the drain deadline: {resp}"
    );
    let (elapsed, cancelled) = shutdown.join().expect("shutdown thread");
    assert!(
        elapsed < Duration::from_secs(10),
        "drain did not terminate promptly: {elapsed:?}"
    );
    assert_eq!(cancelled, 1, "cancelled counter must tick exactly once");
}

/// Soak variant for the scheduled deep-fuzz workflow: eight pipelining
/// connections are cut off mid-stream by shutdown; every delivered
/// response must still be a parseable frame and the server must exit.
#[test]
#[ignore = "soak: minutes of load; run via --ignored in the scheduled workflow"]
fn drain_under_pipelined_load_soak() {
    for round in 0..8 {
        let server = Server::start(ServerConfig {
            workers: 2,
            drain_deadline: Duration::from_millis(500),
            docs: docs(),
            ..ServerConfig::default()
        })
        .unwrap();
        let mut clients = Vec::new();
        for c in 0..8 {
            let (reader, mut writer) = connect(&server);
            for id in 1..=50u64 {
                send(
                    &mut writer,
                    &format!(r#"{{"op":"query","id":{id},"doc":"d0","query":"$root//k"}}"#),
                );
            }
            let collector = std::thread::spawn(move || {
                let mut lines = Vec::new();
                for line in reader.lines() {
                    match line {
                        Ok(l) => lines.push(l),
                        Err(_) => break,
                    }
                }
                lines
            });
            clients.push((c, collector, writer));
        }
        // Shut down while responses are still streaming.
        std::thread::sleep(Duration::from_millis(20 * round));
        let mut server = server;
        server.shutdown();
        for (c, collector, _writer) in clients {
            let lines = collector.join().expect("collector");
            for l in &lines {
                assert!(
                    xq_server::Frame::parse(l).is_ok(),
                    "conn {c}: unparseable frame under drain: {l:?}"
                );
            }
        }
    }
}
