//! Network front door for the query engines: a line-delimited JSON
//! TCP service over the [`xq_core::QueryService`] worker pool.
//!
//! This is the serving layer of the ROADMAP's north star — the paper's
//! complexity-calibrated engines behind a socket. One frame per line:
//!
//! ```text
//! → {"op":"hello","tenant":"acme"}
//! ← {"ok":true,"op":"hello","tenant":"acme"}
//! → {"op":"query","id":1,"doc":"d0","query":"$root/*","deadline_ms":50}
//! ← {"ok":true,"id":1,"result":"<a/><b/>"}
//! → {"op":"cancel","id":2}
//! ← {"ok":true,"op":"cancel","id":2}
//! ```
//!
//! Failures answer with a `code` — `parse`, `eval`, `cancelled`,
//! `deadline`, `overloaded`, `unknown_doc`, `bad_request` — pinned
//! byte-for-byte by the golden suite (`tests/proto.rs`). The pieces:
//!
//! * [`protocol`] — the hand-rolled flat-JSON codec (the registry is
//!   offline; no serde). Total: fuzzing may not panic it.
//! * [`server`] — accept loop, per-connection reader/eval threads,
//!   cooperative cancellation ([`xq_core::CancelFlag`] tripped by
//!   `cancel` frames and disconnects), per-frame deadlines, and
//!   load-shedding through the pool's bounded admission queue.
//!
//! The behavioral contracts live in this crate's test layer:
//! `tests/proto.rs` (golden frames + malformed-frame fuzz),
//! `tests/load_shed.rs` (client swarm: bounded queue, exact shed
//! counts, zero lost or duplicated responses), and
//! `crates/core/tests/cancel_diff.rs` (cancellation is deterministic
//! and engine-agnostic). T19 in the bench harness closes the loop with
//! offered-load vs latency vs shed-rate curves.

pub mod protocol;
pub mod server;

pub use protocol::{Frame, Value};
pub use server::{Server, ServerConfig, ServerStats};
