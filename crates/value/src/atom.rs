//! Atomic values from the single-sorted domain `Dom`.

use std::fmt;
use std::rc::Rc;

/// An atomic value: an uninterpreted symbol from the domain `Dom`.
///
/// The paper works with a single-sorted domain; atoms are compared only by
/// identity (`=atomic`), never by any internal structure. We represent them
/// as shared strings so that cloning is a reference-count bump and the same
/// symbol can appear in millions of places (as in the Theorem 5.6 reduction,
/// where tape trees share alphabet symbols).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(Rc<str>);

impl Atom {
    /// Creates an atom for the given symbol.
    pub fn new(s: impl AsRef<str>) -> Self {
        Atom(Rc::from(s.as_ref()))
    }

    /// The symbol of this atom.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::new(s)
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Self {
        Atom(Rc::from(s))
    }
}

impl From<u64> for Atom {
    fn from(n: u64) -> Self {
        Atom::new(n.to_string())
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atom({:?})", self.as_str())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::borrow::Borrow<str> for Atom {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_compare_by_symbol() {
        assert_eq!(Atom::new("a"), Atom::new("a"));
        assert_ne!(Atom::new("a"), Atom::new("b"));
        assert!(Atom::new("a") < Atom::new("b"));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Atom::new("shared");
        let b = a.clone();
        assert!(Rc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Atom::from(42u64).as_str(), "42");
        assert_eq!(Atom::from("x".to_string()).as_str(), "x");
        assert_eq!(Atom::from("y").as_str(), "y");
    }

    #[test]
    fn display_and_debug() {
        let a = Atom::new("hello");
        assert_eq!(a.to_string(), "hello");
        assert_eq!(format!("{a:?}"), "Atom(\"hello\")");
    }
}
