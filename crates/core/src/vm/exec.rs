//! The stack-based executor.
//!
//! Runs a [`CompiledPlan`] against an [`Env`] under a [`Budget`],
//! producing exactly what [`eval_with`](crate::eval_with) produces — the
//! same trees, the same [`EvalStats`] counters, and the same error at the
//! same point when the budget runs out. That equivalence is the load-
//! bearing contract (the `vm_diff` suite pins it per corpus query), so
//! the machine is deliberately plain: three stacks (lists, booleans, loop
//! frames), a static slot array for query-bound variables, and a program
//! counter over the flat instruction sequence. No recursion: `for`/`let`
//! loops and quantifiers run as jump-backed loops, so evaluation depth is
//! heap-bounded rather than call-stack-bounded.

use super::compile::CompiledPlan;
use super::ir::{OpCode, VarRef};
use crate::ast::EqMode;
use crate::semantics::{Budget, Env, EvalStats, XqError};
use cv_xtree::Tree;

/// Executes a compiled plan in `env` under `budget` — the VM counterpart
/// of [`eval_with`](crate::eval_with), byte- and counter-identical to it.
pub fn exec_with(
    plan: &CompiledPlan,
    env: &Env,
    budget: Budget,
) -> Result<(Vec<Tree>, EvalStats), XqError> {
    let mut m = Machine {
        budget,
        stats: EvalStats::default(),
        env,
        env_depth: env.depth(),
        locals: vec![None; plan.slots()],
        lists: Vec::new(),
        bools: Vec::new(),
        frames: Vec::new(),
    };
    m.run(plan.instrs().ops())?;
    debug_assert!(m.bools.is_empty() && m.frames.is_empty());
    let out = m.lists.pop().expect("a compiled query leaves its result");
    debug_assert!(m.lists.is_empty());
    Ok((out, m.stats))
}

/// Executes a compiled plan on input tree `t` (bound to `$root`) under the
/// default budget — the VM counterpart of [`eval_query`](crate::eval_query).
pub fn exec_query(plan: &CompiledPlan, t: &Tree) -> Result<Vec<Tree>, XqError> {
    exec_with(plan, &Env::with_root(t.clone()), Budget::default()).map(|(out, _)| out)
}

/// An open loop: remaining work items plus (for `for`/`let`) the output
/// accumulated so far. Quantifier frames leave `out` empty.
struct Frame {
    items: std::vec::IntoIter<Tree>,
    out: Vec<Tree>,
}

struct Machine<'e> {
    budget: Budget,
    stats: EvalStats,
    env: &'e Env,
    /// The caller's environment depth — static scope depths in `TickQ`
    /// offset from here, reproducing the interpreter's `max_env_depth`.
    env_depth: usize,
    locals: Vec<Option<Tree>>,
    lists: Vec<Vec<Tree>>,
    bools: Vec<bool>,
    frames: Vec<Frame>,
}

impl Machine<'_> {
    fn step(&mut self) -> Result<(), XqError> {
        self.stats.steps += 1;
        // One shared charge path with the interpreter (cancel flag, then
        // deadline, then step cap) — cancellation is engine-agnostic
        // because both engines observe it at the same tick sites.
        self.budget.charge_step(self.stats.steps)
    }

    fn emit(&mut self, out: &mut Vec<Tree>, t: Tree) -> Result<(), XqError> {
        self.stats.items += 1;
        self.budget.charge_item(self.stats.items)?;
        out.push(t);
        Ok(())
    }

    fn load(&self, r: &VarRef) -> Result<Tree, XqError> {
        match r {
            VarRef::Local(slot, _) => Ok(self.locals[*slot as usize]
                .clone()
                .expect("compiled local is live inside its binder")),
            VarRef::Free(v) => self
                .env
                .lookup(v)
                .cloned()
                .ok_or_else(|| XqError::UnboundVariable(v.name().to_string())),
        }
    }

    fn pop_list(&mut self) -> Vec<Tree> {
        self.lists.pop().expect("list operand on the stack")
    }

    fn pop_bool(&mut self) -> bool {
        self.bools.pop().expect("boolean operand on the stack")
    }

    fn tree_eq(a: &Tree, b: &Tree, mode: EqMode) -> Result<bool, XqError> {
        match mode {
            EqMode::Deep => Ok(a == b),
            EqMode::Atomic => Ok(a.label() == b.label()),
            EqMode::Mon => Err(XqError::BadEqualityMode),
        }
    }

    fn run(&mut self, ops: &[OpCode]) -> Result<(), XqError> {
        let mut pc = 0usize;
        while pc < ops.len() {
            match &ops[pc] {
                OpCode::TickQ(d) => {
                    self.step()?;
                    self.stats.max_env_depth =
                        self.stats.max_env_depth.max(self.env_depth + *d as usize);
                }
                OpCode::TickC => self.step()?,
                OpCode::PushUnit => self.lists.push(Vec::new()),
                OpCode::Load(r) => {
                    let t = self.load(r)?;
                    let mut out = Vec::with_capacity(1);
                    self.emit(&mut out, t)?;
                    self.lists.push(out);
                }
                OpCode::MakeElem(a) => {
                    let children = self.pop_list();
                    let mut out = Vec::with_capacity(1);
                    self.emit(&mut out, Tree::node(a.clone(), children))?;
                    self.lists.push(out);
                }
                OpCode::Concat => {
                    let rest = self.pop_list();
                    let mut out = self.pop_list();
                    for t in rest {
                        self.emit(&mut out, t)?;
                    }
                    self.lists.push(out);
                }
                OpCode::AxisStep(axis, test) => {
                    let bases = self.pop_list();
                    let mut out = Vec::new();
                    for t in &bases {
                        for s in t.axis(*axis) {
                            self.step()?;
                            if test.matches(s.label()) {
                                self.emit(&mut out, s)?;
                            }
                        }
                    }
                    self.lists.push(out);
                }
                OpCode::IterInit => {
                    let items = self.pop_list();
                    self.frames.push(Frame {
                        items: items.into_iter(),
                        out: Vec::new(),
                    });
                }
                OpCode::IterNext { slot, exit, .. } => {
                    let frame = self.frames.last_mut().expect("open loop frame");
                    match frame.items.next() {
                        Some(t) => self.locals[*slot as usize] = Some(t),
                        None => {
                            let frame = self.frames.pop().expect("open loop frame");
                            self.lists.push(frame.out);
                            pc = *exit as usize;
                            continue;
                        }
                    }
                }
                OpCode::IterAccum { back } => {
                    let r = self.pop_list();
                    // Swap the accumulator out so `emit` (which borrows
                    // `self` mutably for the counters) can fill it.
                    let mut out =
                        std::mem::take(&mut self.frames.last_mut().expect("open loop frame").out);
                    for x in r {
                        self.emit(&mut out, x)?;
                    }
                    self.frames.last_mut().expect("open loop frame").out = out;
                    pc = *back as usize;
                    continue;
                }
                OpCode::PushBool(b) => self.bools.push(*b),
                OpCode::CmpVars(x, y, mode) => {
                    let tx = self.load(x)?;
                    let ty = self.load(y)?;
                    self.bools.push(Self::tree_eq(&tx, &ty, *mode)?);
                }
                OpCode::CmpConst(x, a, mode) => {
                    let tx = self.load(x)?;
                    self.bools
                        .push(Self::tree_eq(&tx, &Tree::leaf(a.clone()), *mode)?);
                }
                OpCode::NonEmpty => {
                    let l = self.pop_list();
                    self.bools.push(!l.is_empty());
                }
                OpCode::NotBool => {
                    let b = self.pop_bool();
                    self.bools.push(!b);
                }
                OpCode::JumpIfFalse(t) => {
                    if !self.pop_bool() {
                        pc = *t as usize;
                        continue;
                    }
                }
                OpCode::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                OpCode::AndJump(t) => {
                    if *self.bools.last().expect("boolean operand") {
                        self.bools.pop();
                    } else {
                        pc = *t as usize;
                        continue;
                    }
                }
                OpCode::OrJump(t) => {
                    if *self.bools.last().expect("boolean operand") {
                        pc = *t as usize;
                        continue;
                    } else {
                        self.bools.pop();
                    }
                }
                OpCode::QuantInit => {
                    let items = self.pop_list();
                    self.frames.push(Frame {
                        items: items.into_iter(),
                        out: Vec::new(),
                    });
                }
                OpCode::QuantNext {
                    slot, some, exit, ..
                } => {
                    let frame = self.frames.last_mut().expect("open quantifier frame");
                    match frame.items.next() {
                        Some(t) => self.locals[*slot as usize] = Some(t),
                        None => {
                            self.frames.pop();
                            // Exhausted without a decision: `some` is
                            // false, `every` vacuously true.
                            self.bools.push(!*some);
                            pc = *exit as usize;
                            continue;
                        }
                    }
                }
                OpCode::QuantCheck { some, back, exit } => {
                    let verdict = self.pop_bool();
                    if verdict == *some {
                        // true decides `some`; false decides `every`.
                        self.frames.pop();
                        self.bools.push(*some);
                        pc = *exit as usize;
                    } else {
                        pc = *back as usize;
                    }
                    continue;
                }
            }
            pc += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::compile_query;
    use crate::{eval_with, parse_query};
    use cv_xtree::parse_tree;

    fn both(src: &str, doc: &str, budget: Budget) {
        let q = parse_query(src).unwrap();
        let t = parse_tree(doc).unwrap();
        let env = Env::with_root(t);
        let want = eval_with(&q, &env, budget.clone());
        let got = exec_with(&compile_query(&q), &env, budget);
        match (&want, &got) {
            (Ok((wt, ws)), Ok((gt, gs))) => {
                assert_eq!(gt, wt, "{src}");
                assert_eq!(gs.steps, ws.steps, "{src}: steps");
                assert_eq!(gs.items, ws.items, "{src}: items");
                assert_eq!(gs.max_env_depth, ws.max_env_depth, "{src}: depth");
            }
            (Err(we), Err(ge)) => assert_eq!(ge, we, "{src}"),
            _ => panic!("{src}: interpreter {want:?} vs vm {got:?}"),
        }
    }

    #[test]
    fn vm_matches_interpreter_on_representative_queries() {
        let doc = "<r><a><b/><k/></a><b/><a/><k><a/></k></r>";
        for src in [
            "()",
            "<a/>",
            "$root",
            "$root/*",
            "$root//a",
            "($root/a, $root/b)",
            "<out>{ ($root/a, $root/b, $root/k) }</out>",
            "for $x in $root//a return <w>{ $x/* }</w>",
            "let $z := $root return for $x in $z/* return $x",
            "for $x in $root/* return for $y in $x/* return <p>{ $y }</p>",
            "if ($root = $root) then <eq/>",
            "if (some $x in $root/* satisfies $x =atomic <k/>) then <hit/>",
            "if (every $x in $root/* satisfies $x =atomic $x) then <all/>",
            "if (not($root/b) and $root/a) then <both/>",
            "if ($root/zzz or $root/a) then <or/>",
            "for $x in (for $w in $root/* where $w/b return $w) return <f>{ $x }</f>",
            "for $x in $root/a return for $x in $x/* return $x",
        ] {
            both(src, doc, Budget::default());
        }
    }

    #[test]
    fn budget_exhaustion_is_identical_to_the_interpreter() {
        let doc = "<r><a/><a/><a/><a/></r>";
        let src = "for $x in $root//* return for $y in $root//* return <t>{ $y }</t>";
        // Sweep tight budgets so the error point crosses every opcode.
        for max_steps in 0..60 {
            both(
                src,
                doc,
                Budget {
                    max_steps,
                    ..Budget::default()
                },
            );
        }
        for max_items in 0..40 {
            both(
                src,
                doc,
                Budget {
                    max_items,
                    ..Budget::default()
                },
            );
        }
    }

    #[test]
    fn unbound_and_mon_errors_match() {
        both("$nope", "<a/>", Budget::default());
        both("if ($nope = $root) then <x/>", "<a/>", Budget::default());
        // `=mon` has no surface syntax; build the AST directly.
        use crate::ast::{Cond, EqMode, Query};
        let q = Query::if_then(
            Cond::VarEq("root".into(), "root".into(), EqMode::Mon),
            Query::leaf("x"),
        );
        let env = Env::with_root(parse_tree("<a/>").unwrap());
        let want = eval_with(&q, &env, Budget::default()).unwrap_err();
        let got = exec_with(&compile_query(&q), &env, Budget::default()).unwrap_err();
        assert_eq!(got, want);
        assert_eq!(got, XqError::BadEqualityMode);
    }
}
