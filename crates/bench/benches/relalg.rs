//! E13 (Thm 2.5 / Fig 11): the V_τ decoder and relational baselines.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cv_monad::{eval, CollectionKind};
use cv_value::Value;
use xq_relalg::{flat_value, v_prime};

fn bench(c: &mut Criterion) {
    let ty = cv_value::parse_type("{<A: Dom, B: Dom>}").unwrap();
    let mut g = c.benchmark_group("relalg");
    g.sample_size(10);
    for rows in [4usize, 16] {
        let v = Value::set((0..rows).map(|i| {
            Value::tuple([
                ("A", Value::atom(format!("a{i}"))),
                ("B", Value::atom(format!("b{}", i % 3))),
            ])
        }));
        let (flat, root) = flat_value(&v);
        let q = v_prime(&ty, root);
        g.bench_with_input(
            BenchmarkId::new("v_prime_decode", rows),
            &flat,
            |b, flat| b.iter(|| eval(&q, CollectionKind::Set, flat).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
