//! The translations between Core XQuery and monad algebra on lists (§3).
//!
//! * [`c_tree`]/[`c_forest`] — the encodings `C`/`C′` of XML trees as
//!   complex values: a node with label `a` and children `t1…tn` becomes
//!   `⟨label: a, children: [C(t1), …, C(tn)]⟩`;
//! * [`t_value`]/[`t_value_inverse`] — the canonical translation `T` from
//!   complex values (lists + tuples + atoms) to trees:
//!   `T(⟨A1: v1, A2: v2⟩) = ⟨tup⟩⟨A1⟩T(v1)⟨/A1⟩⟨A2⟩T(v2)⟨/A2⟩⟨/tup⟩`,
//!   `T([v1…vn]) = ⟨list⟩T(v1)…T(vn)⟨/list⟩`, `T(c) = ⟨c/⟩`,
//!   `T(⟨⟩) = ⟨tup/⟩`;
//! * [`ma_query`] — the Figure 2 mapping
//!   `MA : XQ[=, child, not] → M∪^[ ][=, not]` (Lemma 3.2), extended to the
//!   descendant/self axes with `descmap` per Theorem 5.5;
//! * [`xq_of_ma`] — the Figure 3 mapping `XQ : M∪^[ ][=] → XQ[=, child]`
//!   (Lemma 3.3).
//!
//! One correction to the paper: Figure 3 prints
//! `XQ(true)($x) = {if $x then ⟨nonempty/⟩}`, which cannot satisfy the
//! Lemma 3.3 invariant `T(Q(v)) = [[XQ(Q)($x)]]` — `$x` is always a single
//! tree (so the condition never fails) and the output shape must be a
//! `T`-image. We emit
//! `⟨list⟩{if ($x/*) then ⟨tup/⟩}⟨/list⟩`, which does satisfy it.

use crate::ast::{Cond as XCond, EqMode, Query, Var};
use crate::semantics::{eval_with, Budget, Env, XqError};
use cv_monad::{typecheck, Cond, Expr, Operand, TypeError};
use cv_value::{Type, Value, ValueKind};
use cv_xtree::{Axis, NodeTest, Tree};

// ---------------------------------------------------------------------------
// C and C′: trees to complex values
// ---------------------------------------------------------------------------

/// The encoding `C` of a tree as a complex value (§3).
pub fn c_tree(t: &Tree) -> Value {
    Value::tuple([
        ("label", Value::atom(t.label().as_str())),
        ("children", Value::list(t.children().iter().map(c_tree))),
    ])
}

/// The encoding `C′` of a list of trees as a list-typed complex value.
pub fn c_forest(ts: &[Tree]) -> Value {
    Value::list(ts.iter().map(c_tree))
}

/// Decodes a `C`-encoded complex value back into a tree.
pub fn c_tree_inverse(v: &Value) -> Option<Tree> {
    let label = v.project("label").ok()?.as_atom()?.as_str().to_string();
    let children = v.project("children").ok()?;
    let (kind, items) = children.as_collection()?;
    if kind != cv_value::CollectionKind::List {
        return None;
    }
    let children = items
        .iter()
        .map(c_tree_inverse)
        .collect::<Option<Vec<_>>>()?;
    Some(Tree::node(label, children))
}

/// The monad-algebra environment value for a Figure 1 environment:
/// `[⟨N: x1, V: C(t1)⟩, …, ⟨N: xk, V: C(tk)⟩]` (Lemma 3.2).
pub fn ma_env(env: &[(Var, Tree)]) -> Value {
    Value::list(
        env.iter()
            .map(|(v, t)| Value::tuple([("N", Value::atom(v.name())), ("V", c_tree(t))])),
    )
}

// ---------------------------------------------------------------------------
// T: complex values to trees
// ---------------------------------------------------------------------------

/// The canonical translation `T` from complex values built of lists,
/// tuples, and atoms to trees (Lemma 3.3). Sets and bags are not in its
/// domain (monad algebra *on lists* corresponds to XQuery).
pub fn t_value(v: &Value) -> Option<Tree> {
    match v.kind() {
        ValueKind::Atom(a) => Some(Tree::leaf(a.as_str())),
        ValueKind::Tuple(fields) => {
            let mut children = Vec::with_capacity(fields.len());
            for (name, fv) in fields {
                children.push(Tree::node(name.as_str(), [t_value(fv)?]));
            }
            Some(Tree::node("tup", children))
        }
        ValueKind::List(items) => {
            let children = items.iter().map(t_value).collect::<Option<Vec<_>>>()?;
            Some(Tree::node("list", children))
        }
        ValueKind::Set(_) | ValueKind::Bag(_) => None,
    }
}

/// Decodes a `T`-image tree back into a complex value. Atoms named `tup`
/// or `list` are outside the decodable range (as in the paper, `T` is a
/// representation choice, not a bijection on all trees).
pub fn t_value_inverse(t: &Tree) -> Option<Value> {
    match t.label().as_str() {
        "tup" => {
            let mut fields = Vec::with_capacity(t.children().len());
            for c in t.children() {
                if c.children().len() != 1 {
                    return None;
                }
                fields.push((
                    c.label().as_str().to_string(),
                    t_value_inverse(&c.children()[0])?,
                ));
            }
            Some(Value::tuple(fields))
        }
        "list" => {
            let items = t
                .children()
                .iter()
                .map(t_value_inverse)
                .collect::<Option<Vec<_>>>()?;
            Some(Value::list(items))
        }
        _ if t.is_leaf() => Some(Value::atom(t.label().as_str())),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// MA: XQ → monad algebra on lists (Figure 2)
// ---------------------------------------------------------------------------

/// Translation failure for [`ma_query`] / [`xq_of_ma`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The query contains a construct outside the translated fragment.
    Unsupported(String),
    /// Type inference failed while threading tuple attributes (Fig 3 needs
    /// the attribute names at every `pairwith`).
    Type(TypeError),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Unsupported(m) => write!(f, "untranslatable construct: {m}"),
            TranslateError::Type(e) => write!(f, "type inference failed: {e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<TypeError> for TranslateError {
    fn from(e: TypeError) -> TranslateError {
        TranslateError::Type(e)
    }
}

fn sel_var(v: &Var) -> Expr {
    // σ_{N=$x}
    Expr::Select(Cond::eq_atomic(Operand::path("N"), Operand::atom(v.name())))
}

fn node_test_filter(nt: &NodeTest) -> Option<Expr> {
    match nt {
        NodeTest::Wildcard => None,
        NodeTest::Tag(a) => Some(Expr::Select(Cond::eq_atomic(
            Operand::path("label"),
            Operand::atom(a.as_str()),
        ))),
    }
}

/// The Figure 2 translation `MA` from `XQ[=, child, descendant, self, dos,
/// not]` to monad algebra on lists. Derived condition forms are lowered
/// per Prop 3.1 first; `let` is lowered to `for`.
///
/// The result maps the environment encoding [`ma_env`] to the `C′`-encoded
/// result list: `C′([[Q]]k(~e)) = MA(Q)(ma_env(~e))` (Lemma 3.2 (1)).
pub fn ma_query(q: &Query) -> Result<Expr, TranslateError> {
    let mut fresh = 0;
    ma_q(&q.desugar(&mut fresh))
}

fn ma_q(q: &Query) -> Result<Expr, TranslateError> {
    match q {
        Query::Empty => Ok(Expr::EmptyColl),
        Query::Elem(a, body) => {
            Ok(
                Expr::mk_tuple([("label", Expr::atom(a.as_str())), ("children", ma_q(body)?)])
                    .then(Expr::Sng),
            )
        }
        Query::Seq(x, y) => Ok(ma_q(x)?.union(ma_q(y)?)),
        Query::Var(v) => Ok(sel_var(v).then(Expr::proj("V").mapped())),
        Query::Step(base, axis, nt) => {
            let Query::Var(v) = &**base else {
                return Err(TranslateError::Unsupported(format!(
                    "step on a non-variable query: {q}"
                )));
            };
            // σ_{N=$x} ∘ flatmap(π_V ∘ ⟨axis navigation⟩)
            let nav = match axis {
                Axis::Child => Expr::proj("children"),
                // Proper descendants: descmap of every child.
                Axis::Descendant => Expr::proj("children").then(Expr::flatmap(Expr::DescMap)),
                Axis::SelfAxis => Expr::Id.then(Expr::Sng),
                Axis::DescendantOrSelf => Expr::DescMap,
            };
            let mut inner = Expr::proj("V").then(nav);
            if let Some(filter) = node_test_filter(nt) {
                inner = inner.then(filter);
            }
            Ok(sel_var(v).then(Expr::flatmap(inner)))
        }
        Query::For(v, source, body) => {
            // ⟨1: id, 2: MA(α)⟩ ∘ pairwith2 ∘
            //   flatmap((π1 ∪ (⟨N: $x, V: π2⟩ ∘ sng)) ∘ MA(β))
            let bind = Expr::mk_tuple([("N", Expr::atom(v.name())), ("V", Expr::proj("2"))])
                .then(Expr::Sng);
            Ok(Expr::mk_tuple([("1", Expr::Id), ("2", ma_q(source)?)])
                .then(Expr::pairwith("2"))
                .then(Expr::flatmap(Expr::proj("1").union(bind).then(ma_q(body)?))))
        }
        Query::If(c, body) => {
            // ⟨1: id, 2: MA(φ) ∘ true⟩ ∘ pairwith2 ∘ flatmap(π1 ∘ MA(β))
            Ok(
                Expr::mk_tuple([("1", Expr::Id), ("2", ma_cond(c)?.then(Expr::True))])
                    .then(Expr::pairwith("2"))
                    .then(Expr::flatmap(Expr::proj("1").then(ma_q(body)?))),
            )
        }
        Query::Let(_, _, _) => Err(TranslateError::Unsupported(
            "let must be desugared before translation".into(),
        )),
    }
}

fn ma_cond(c: &XCond) -> Result<Expr, TranslateError> {
    match c {
        XCond::VarEq(x, y, mode) => {
            // ⟨1: σ_{N=$x}, 2: σ_{N=$y}⟩ ∘ pairwith1 ∘ flatmap(pairwith2) ∘ σ…
            let filter = match mode {
                EqMode::Deep => Cond::eq_deep(Operand::path("1.V"), Operand::path("2.V")),
                EqMode::Atomic => {
                    Cond::eq_atomic(Operand::path("1.V.label"), Operand::path("2.V.label"))
                }
                EqMode::Mon => {
                    return Err(TranslateError::Unsupported(
                        "=mon is not an XQuery equality".into(),
                    ))
                }
            };
            Ok(Expr::mk_tuple([("1", sel_var(x)), ("2", sel_var(y))])
                .then(Expr::pairwith("1"))
                .then(Expr::flatmap(Expr::pairwith("2")))
                .then(Expr::Select(filter)))
        }
        XCond::Query(q) => ma_q(q),
        XCond::Not(inner) => {
            // MA(not α) := MA(α) ∘ map(⟨⟩) ∘ not
            Ok(ma_cond(inner)?
                .then(Expr::mk_tuple::<_, &str>([]).mapped())
                .then(Expr::Not))
        }
        other => Err(TranslateError::Unsupported(format!(
            "condition {other} must be desugared before translation"
        ))),
    }
}

/// [`ma_query`] followed by the `cv_monad::opt` normalization pass — the
/// plan handed to engines when optimization is requested. Returns the
/// rewritten expression together with the rule [`cv_monad::Trace`].
///
/// The Figure 2 output is full of optimizer fodder: every `for`/`if`
/// builds `⟨1: id, 2: …⟩ ∘ pairwith_2 ∘ flatmap(…)` scaffolding whose
/// compositions the pass flattens, and any derived Theorem 2.2
/// constructions spliced in by callers collapse to built-ins.
pub fn ma_query_optimized(q: &Query) -> Result<(Expr, cv_monad::Trace), TranslateError> {
    let expr = ma_query(q)?;
    Ok(cv_monad::opt::optimize(
        &expr,
        cv_monad::CollectionKind::List,
    ))
}

/// Convenience: checks the Lemma 3.2 invariant on a concrete input —
/// evaluates both sides and compares. Also evaluates the
/// [`ma_query_optimized`] plan, so every call differentially tests the
/// optimizer pass against the naive translation. Used heavily in tests
/// and benches.
pub fn ma_invariant_holds(q: &Query, t: &Tree) -> Result<bool, String> {
    let expr = ma_query(q).map_err(|e| e.to_string())?;
    let xq_result = match eval_with(q, &Env::with_root(t.clone()), Budget::default()) {
        Ok((r, _)) => r,
        Err(XqError::Budget { .. }) => return Ok(true), // nothing to compare
        Err(e) => return Err(e.to_string()),
    };
    let env_val = ma_env(&[(Var::root(), t.clone())]);
    let ma_result = cv_monad::eval(&expr, cv_monad::CollectionKind::List, &env_val)
        .map_err(|e| e.to_string())?;
    let (opt_expr, _) = cv_monad::opt::optimize(&expr, cv_monad::CollectionKind::List);
    let opt_result = cv_monad::eval(&opt_expr, cv_monad::CollectionKind::List, &env_val)
        .map_err(|e| format!("optimized plan failed: {e}"))?;
    Ok(c_forest(&xq_result) == ma_result && ma_result == opt_result)
}

// ---------------------------------------------------------------------------
// XQ: monad algebra on lists → XQ (Figure 3)
// ---------------------------------------------------------------------------

struct XqBuilder {
    fresh: usize,
}

impl XqBuilder {
    fn fresh_var(&mut self) -> Var {
        self.fresh += 1;
        Var::fresh(self.fresh)
    }

    /// `q/ν/∗` shorthand: `for $y in q/ν return $y/*` when `q` is not a
    /// variable; direct steps otherwise.
    fn step(&mut self, base: Query, tag: &str) -> Query {
        match base {
            v @ Query::Var(_) => Query::child(v, tag),
            other => {
                let y = self.fresh_var();
                Query::for_in(y.clone(), other, Query::child(Query::Var(y), tag))
            }
        }
    }

    fn step_any(&mut self, base: Query) -> Query {
        match base {
            v @ Query::Var(_) => Query::child_any(v),
            other => {
                let y = self.fresh_var();
                Query::for_in(y.clone(), other, Query::child_any(Query::Var(y)))
            }
        }
    }

    fn translate(&mut self, f: &Expr, ty: &Type, x: &Var) -> Result<(Query, Type), TranslateError> {
        let out_ty = typecheck(f, cv_monad::CollectionKind::List, ty)?;
        let q = match f {
            Expr::Id => Query::Var(x.clone()),
            Expr::Compose(f, g) => {
                // for $y in XQ(f)($x) return XQ(g)($y)
                let (qf, tf) = self.translate(f, ty, x)?;
                let y = self.fresh_var();
                let (qg, _) = self.translate(g, &tf, &y)?;
                Query::for_in(y, qf, qg)
            }
            Expr::Const(v) => value_query(v)?,
            Expr::EmptyColl => Query::leaf("list"),
            Expr::Sng => Query::elem("list", Query::Var(x.clone())),
            Expr::Map(g) => {
                // ⟨list⟩{for $y in $x/* return XQ(g)($y)}⟨/list⟩
                let elem_ty = ty.element().cloned().unwrap_or(Type::Any);
                let y = self.fresh_var();
                let (qg, _) = self.translate(g, &elem_ty, &y)?;
                Query::elem(
                    "list",
                    Query::for_in(y, Query::child_any(Query::Var(x.clone())), qg),
                )
            }
            Expr::Flatten => {
                // ⟨list⟩{$x/list/∗}⟨/list⟩
                let inner = self.step(Query::Var(x.clone()), "list");
                Query::elem("list", self.step_any(inner))
            }
            Expr::PairWith(attr) => {
                // Figure 3's XQ(pairwith_i)($x): needs all attribute names.
                let fields = ty
                    .attributes()
                    .ok_or_else(|| {
                        TranslateError::Unsupported(format!("pairwith at non-tuple type {ty}"))
                    })?
                    .to_vec();
                let y = self.fresh_var();
                let mut parts = Vec::with_capacity(fields.len());
                for (name, _) in &fields {
                    if name == attr.as_str() {
                        parts.push(Query::elem(name.as_str(), Query::Var(y.clone())));
                    } else {
                        let inner = self.step(Query::Var(x.clone()), name);
                        parts.push(Query::elem(name.as_str(), self.step_any(inner)));
                    }
                }
                // for $y in $x/ai/list/* return ⟨tup⟩…⟨/tup⟩
                let src_ai = self.step(Query::Var(x.clone()), attr.as_str());
                let src_list = self.step(src_ai, "list");
                let src = self.step_any(src_list);
                Query::elem(
                    "list",
                    Query::for_in(y, src, Query::elem("tup", Query::seq(parts))),
                )
            }
            Expr::MkTuple(fields) => {
                // ⟨tup⟩⟨a1⟩XQ(f1)($x)⟨/a1⟩…⟨/tup⟩
                let mut parts = Vec::with_capacity(fields.len());
                for (name, g) in fields {
                    let (qg, _) = self.translate(g, ty, x)?;
                    parts.push(Query::elem(name.as_str(), qg));
                }
                Query::elem("tup", Query::seq(parts))
            }
            Expr::Proj(a) => {
                // {$x/ai/∗}
                let inner = self.step(Query::Var(x.clone()), a.as_str());
                self.step_any(inner)
            }
            Expr::Union(f, g) => {
                // ⟨list⟩{(XQ(f)($x))/∗}{(XQ(g)($x))/∗}⟨/list⟩
                let (qf, _) = self.translate(f, ty, x)?;
                let (qg, _) = self.translate(g, ty, x)?;
                let lf = self.step_any(qf);
                let lg = self.step_any(qg);
                Query::elem("list", Query::seq([lf, lg]))
            }
            Expr::Pred(Cond::Eq(Operand::Path(pa), Operand::Path(pb), mode))
                if pa.len() == 1 && pb.len() == 1 =>
            {
                // ⟨list⟩{if (some $y in $x/ai/∗ satisfies
                //           some $z in $x/aj/∗ satisfies $y = $z)
                //        then ⟨tup/⟩}⟨/list⟩
                let xmode = match mode {
                    cv_monad::EqMode::Atomic => EqMode::Atomic,
                    cv_monad::EqMode::Deep => EqMode::Deep,
                    cv_monad::EqMode::Mon => {
                        return Err(TranslateError::Unsupported(
                            "=mon has no XQuery counterpart".into(),
                        ))
                    }
                };
                let y = self.fresh_var();
                let z = self.fresh_var();
                let ai = self.step(Query::Var(x.clone()), pa[0].as_str());
                let src_y = self.step_any(ai);
                let aj = self.step(Query::Var(x.clone()), pb[0].as_str());
                let src_z = self.step_any(aj);
                let cond = XCond::some(
                    y.clone(),
                    src_y,
                    XCond::some(z.clone(), src_z, XCond::VarEq(y, z, xmode)),
                );
                Query::elem("list", Query::if_then(cond, Query::leaf("tup")))
            }
            Expr::True => {
                // Corrected Fig 3 (see module docs):
                // ⟨list⟩{if ($x/*) then ⟨tup/⟩}⟨/list⟩
                Query::elem(
                    "list",
                    Query::if_then(
                        XCond::query(Query::child_any(Query::Var(x.clone()))),
                        Query::leaf("tup"),
                    ),
                )
            }
            Expr::Not => {
                // not: input Boolean list; output [⟨⟩] iff input empty.
                Query::elem(
                    "list",
                    Query::if_then(
                        XCond::query(Query::child_any(Query::Var(x.clone()))).negate(),
                        Query::leaf("tup"),
                    ),
                )
            }
            other => {
                return Err(TranslateError::Unsupported(format!(
                    "operation {other} is outside the Figure 3 fragment \
                     (desugar derived operations first)"
                )))
            }
        };
        Ok((q, out_ty))
    }
}

/// Builds a query constant for `T(v)` — constants are values constructed
/// from scratch (Prop 4.1 / Fig 3 `XQ(c)`).
pub fn value_query(v: &Value) -> Result<Query, TranslateError> {
    let tree = t_value(v)
        .ok_or_else(|| TranslateError::Unsupported(format!("sets/bags have no T-image: {v}")))?;
    fn tree_query(t: &Tree) -> Query {
        Query::elem(
            t.label().clone(),
            Query::seq(t.children().iter().map(tree_query)),
        )
    }
    Ok(tree_query(&tree))
}

/// The Figure 3 translation `XQ` from monad algebra on lists (core
/// operations `id, ∘, const, sng, map, flatten, pairwith, ⟨…⟩, π, ∪,
/// (Ai = Aj), true, not`) to `XQ[=, child]`.
///
/// `input_type` is the type of the value the query will be applied to —
/// Figure 3 needs the tuple attribute names at every `pairwith`
/// (Lemma 3.3 (3) restricts to pairs to make the output linear-size; we
/// translate any arity, with the size growing with tuple width exactly as
/// the paper notes).
///
/// Returns a query with one free variable `$x` such that
/// `T(Q(v)) = [[XQ(Q)($x)]]({$x ↦ T(v)})` (Lemma 3.3 (1)).
pub fn xq_of_ma(f: &Expr, input_type: &Type, x: &Var) -> Result<Query, TranslateError> {
    let mut b = XqBuilder { fresh: 1000 };
    let (q, _) = b.translate(f, input_type, x)?;
    Ok(q)
}

/// Convenience: checks the Lemma 3.3 invariant on a concrete input value.
pub fn xq_invariant_holds(f: &Expr, input_type: &Type, v: &Value) -> Result<bool, String> {
    let x = Var::new("arg");
    let q = xq_of_ma(f, input_type, &x).map_err(|e| e.to_string())?;
    let tv = t_value(v).ok_or("input value has no T-image")?;
    let mut env = Env::new();
    env.bind(x, tv);
    let (xq_result, _) = eval_with(&q, &env, Budget::default()).map_err(|e| e.to_string())?;
    let ma_result =
        cv_monad::eval(f, cv_monad::CollectionKind::List, v).map_err(|e| e.to_string())?;
    let want = t_value(&ma_result).ok_or("result value has no T-image")?;
    Ok(xq_result == vec![want])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use cv_value::parse_value;
    use cv_xtree::parse_tree;

    fn tree(s: &str) -> Tree {
        parse_tree(s).unwrap()
    }

    #[test]
    fn c_encoding_round_trips() {
        let t = tree("<a><b/><c><d/></c></a>");
        let v = c_tree(&t);
        assert_eq!(c_tree_inverse(&v), Some(t));
        assert_eq!(
            v.to_string(),
            "<label: a, children: [<label: b, children: []>, \
             <label: c, children: [<label: d, children: []>]>]>"
        );
    }

    #[test]
    fn t_encoding_matches_paper_definition() {
        let v = parse_value("<A: x, B: [y, z]>").unwrap();
        let t = t_value(&v).unwrap();
        assert_eq!(
            t.to_xml(),
            "<tup><A><x/></A><B><list><y/><z/></list></B></tup>"
        );
        assert_eq!(t_value_inverse(&t), Some(v));
        // Unit tuple and the empty list.
        assert_eq!(t_value(&Value::unit()).unwrap().to_xml(), "<tup/>");
        assert_eq!(t_value(&Value::list([])).unwrap().to_xml(), "<list/>");
        // Sets have no T-image.
        assert!(t_value(&Value::set([Value::atom("x")])).is_none());
    }

    #[test]
    fn ma_translation_is_linear_size() {
        // Lemma 3.2 (3): |MA(Q)| = O(|Q|).
        let q = parse_query("for $x in $root/a return if ($x = $x) then <w>{$x/b}</w>").unwrap();
        let e = ma_query(&q).unwrap();
        assert!(
            e.size() <= 40 * q.size(),
            "|MA(Q)| = {} vs |Q| = {}",
            e.size(),
            q.size()
        );
    }

    #[test]
    fn lemma_3_2_invariant_on_child_queries() {
        let doc = "<r><a><b/><b/></a><a><c/></a><b/></r>";
        for src in [
            "()",
            "<out/>",
            "$root",
            "$root/a",
            "$root/*",
            "($root/a, $root/b)",
            "<out>{ $root/a }</out>",
            "for $x in $root/a return $x/*",
            "for $x in $root/a return <w>{ $x/b }</w>",
            "for $x in $root/* return for $y in $x/* return $y",
            "if ($root/a) then <yes/>",
            "if ($root/zzz) then <yes/>",
            "for $x in $root/* return if ($x = $x) then <hit/>",
            "for $x in $root/* return for $y in $root/* return \
             if ($x = $y) then <deepeq/>",
            "for $x in $root/* return for $y in $root/* return \
             if ($x =atomic $y) then <atomeq/>",
            "if (not($root/zzz)) then <empty/>",
        ] {
            let q = parse_query(src).unwrap();
            assert!(
                ma_invariant_holds(&q, &tree(doc)).unwrap(),
                "Lemma 3.2 failed for {src}"
            );
        }
    }

    #[test]
    fn lemma_3_2_invariant_on_other_axes() {
        // Theorem 5.5's descmap extension.
        let doc = "<r><a><b><a/></b></a></r>";
        for src in ["$root//a", "$root//*", "$root/self::r", "$root/dos::*"] {
            let q = parse_query(src).unwrap();
            assert!(
                ma_invariant_holds(&q, &tree(doc)).unwrap(),
                "descmap extension failed for {src}"
            );
        }
    }

    #[test]
    fn fig_2_for_binding_shape() {
        // The environment extension must append the new binding so inner
        // lookups see it (paper: E ∪ [⟨N: $x_{k+1}, V: C(t)⟩]).
        let q = parse_query("for $x in $root/a return $x").unwrap();
        let e = ma_query(&q).unwrap();
        let env_val = ma_env(&[(Var::root(), tree("<r><a><z/></a></r>"))]);
        let got = cv_monad::eval(&e, cv_monad::CollectionKind::List, &env_val).unwrap();
        let want = c_forest(&[tree("<a><z/></a>")]);
        assert_eq!(got, want);
    }

    #[test]
    fn fig_3_translation_core_ops() {
        use cv_monad::Expr as E;
        let list_of_atoms = Type::list(Type::Dom);
        let pair = Type::tuple([("A", Type::list(Type::Dom)), ("B", Type::Dom)]);
        let cases: Vec<(E, Type, &str)> = vec![
            (E::Id, Type::Dom, "c"),
            (E::Sng, Type::Dom, "c"),
            (E::Sng.then(E::Sng).then(E::Flatten), Type::Dom, "c"),
            (E::Sng.mapped(), list_of_atoms.clone(), "[a, b, a]"),
            (E::proj("B"), pair.clone(), "<A: [x], B: y>"),
            (E::pairwith("A"), pair.clone(), "<A: [x, y], B: z>"),
            (E::pairwith("A"), pair.clone(), "<A: [], B: z>"),
            (
                E::mk_tuple([("A", E::Id.then(E::Sng)), ("B", E::Id)]),
                Type::Dom,
                "c",
            ),
            (E::Id.union(E::Id), list_of_atoms.clone(), "[a, b]"),
            (E::EmptyColl, Type::Dom, "c"),
            (E::konst(parse_value("[x, y]").unwrap()), Type::Dom, "c"),
            (
                E::konst(parse_value("<A: y, B: [z]>").unwrap()),
                Type::Dom,
                "c",
            ),
            (E::True, Type::list(Type::unit()), "[<>]"),
            (E::True, Type::list(Type::unit()), "[]"),
            (E::Not, Type::list(Type::unit()), "[]"),
            (E::Not, Type::list(Type::unit()), "[<>, <>]"),
        ];
        for (f, ty, input) in cases {
            let v = parse_value(input).unwrap();
            assert!(
                xq_invariant_holds(&f, &ty, &v).unwrap(),
                "Lemma 3.3 failed for {f} on {input}"
            );
        }
    }

    #[test]
    fn fig_3_equality_predicate() {
        use cv_monad::{Cond as MC, EqMode as ME, Expr as E, Operand as MO};
        let ty = Type::tuple([("A", Type::Dom), ("B", Type::Dom)]);
        let pred = |mode| E::Pred(MC::Eq(MO::path("A"), MO::path("B"), mode));
        for (input, _expect) in [("<A: x, B: x>", true), ("<A: x, B: y>", false)] {
            let v = parse_value(input).unwrap();
            assert!(
                xq_invariant_holds(&pred(ME::Atomic), &ty, &v).unwrap(),
                "atomic eq on {input}"
            );
            assert!(
                xq_invariant_holds(&pred(ME::Deep), &ty, &v).unwrap(),
                "deep eq on {input}"
            );
        }
        // Deep equality of list-valued attributes.
        let ty = Type::tuple([("A", Type::list(Type::Dom)), ("B", Type::list(Type::Dom))]);
        for input in ["<A: [x, y], B: [x, y]>", "<A: [x], B: [x, y]>"] {
            let v = parse_value(input).unwrap();
            assert!(
                xq_invariant_holds(&pred(ME::Deep), &ty, &v).unwrap(),
                "deep eq on {input}"
            );
        }
    }

    #[test]
    fn fig_3_composition_threads_types() {
        use cv_monad::Expr as E;
        // pairwith then map(π_B): needs type information at both steps.
        let ty = Type::tuple([("A", Type::list(Type::Dom)), ("B", Type::Dom)]);
        let f = E::pairwith("A").then(E::proj("B").mapped());
        let v = parse_value("<A: [x, y], B: z>").unwrap();
        assert!(xq_invariant_holds(&f, &ty, &v).unwrap());
    }

    #[test]
    fn round_trip_xq_to_ma_to_xq() {
        // XQ → MA (Fig 2), then MA → XQ (Fig 3), evaluated on the encoded
        // environment, agrees with direct evaluation modulo C/T encodings.
        let q = parse_query("for $x in $root/a return <w>{ $x/* }</w>").unwrap();
        let doc = tree("<r><a><p/><q/></a><a/></r>");

        let e = ma_query(&q).unwrap();
        // Type of the environment encoding: [⟨N: Dom, V: tree⟩] — the tree
        // type is recursive, so give V type Any and let the dynamic checks
        // do the rest: Fig 3 translation of e then needs no pairwith on V.
        // (pairwith "1"/"2" occur at known tuple types built inside e.)
        let env_ty = Type::list(Type::tuple([("N", Type::Dom), ("V", Type::Any)]));
        match xq_of_ma(&e, &env_ty, &Var::new("env")) {
            Ok(q2) => {
                // Evaluate q2 on T(ma_env(...)).
                let env_val = ma_env(&[(Var::root(), doc.clone())]);
                let tv = t_value(&env_val).unwrap();
                let mut env = Env::new();
                env.bind(Var::new("env"), tv);
                let (got, _) = eval_with(&q2, &env, Budget::default()).unwrap();
                let direct = crate::semantics::eval_query(&q, &doc).unwrap();
                let want = t_value(&c_forest(&direct)).unwrap();
                assert_eq!(got, vec![want]);
            }
            Err(TranslateError::Unsupported(_)) => {
                // Acceptable: MA output may use ops outside Fig 3 (e.g.
                // select) — the two lemmas each hold in their own direction.
            }
            Err(e) => panic!("unexpected translation error: {e}"),
        }
    }

    #[test]
    fn optimized_translation_agrees_and_never_grows() {
        let doc = tree("<r><a><b/><b/></a><a><c/></a><b/></r>");
        for src in [
            "$root/a",
            "for $x in $root/a return <w>{ $x/b }</w>",
            "if ($root/a) then <yes/>",
            "for $x in $root/* return if ($x = $x) then <hit/>",
            "if (not($root/zzz)) then <empty/>",
        ] {
            let q = parse_query(src).unwrap();
            let naive = ma_query(&q).unwrap();
            let (opt, _) = ma_query_optimized(&q).unwrap();
            assert!(
                opt.size() <= naive.size(),
                "{src}: optimized {} vs naive {}",
                opt.size(),
                naive.size()
            );
            // ma_invariant_holds evaluates the naive and optimized plans
            // and the reference semantics, and compares all three.
            assert!(ma_invariant_holds(&q, &doc).unwrap(), "{src}");
        }
    }

    #[test]
    fn untranslatable_constructs_error_cleanly() {
        let q = parse_query("(<a><b/></a>)/b").unwrap();
        assert!(matches!(ma_query(&q), Err(TranslateError::Unsupported(_))));
        let f = cv_monad::Expr::Unique;
        assert!(matches!(
            xq_of_ma(&f, &Type::list(Type::Dom), &Var::new("x")),
            Err(TranslateError::Unsupported(_))
        ));
    }
}
