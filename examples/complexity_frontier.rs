//! The complexity landscape of Table I, made executable: the blowup
//! family (Prop 4.2), the NTM reduction (Thm 5.6), the QBF reduction
//! (Prop 7.4), and the streaming evaluator that keeps space singly
//! exponential (Thm 4.5).

use xq_complexity::core::parse_query;
use xq_complexity::monad::Budget;
use xq_complexity::reductions::{self as red, measure_blowup, EqFlavor, NtmReduction};
use xq_complexity::stream::stream_query;

fn main() {
    println!("Prop 4.2 — values of size 2^(2^m) from queries of size O(m):");
    for m in 0..=4usize {
        let p = measure_blowup(m, Budget::large()).unwrap();
        println!(
            "  m={m}: |Q|={}, |result|={} members",
            p.query_size, p.cardinality
        );
    }

    println!("\nThm 5.6 — machine acceptance as a monad algebra query (K=1):");
    let machine = red::ntm::zoo::some_one();
    for input in [vec![0, 1], vec![0, 0]] {
        let start = machine.start_config(&input, 2);
        let simulated = machine.accepts_in(&start, 2);
        let reduced = NtmReduction::new(&machine, 1, input.clone(), EqFlavor::Builtin)
            .run(Budget::large())
            .unwrap();
        println!("  input {input:?}: simulator={simulated}, φ_accept={reduced}");
    }

    println!("\nProp 7.4 — QBF as a composition-free query:");
    let f = red::Qbf {
        prefix: vec![red::Quantifier::Forall, red::Quantifier::Exists],
        matrix: red::Formula::Or(
            Box::new(red::Formula::Not(Box::new(red::Formula::Var(0)))),
            Box::new(red::Formula::Var(1)),
        ),
    };
    let q = red::qbf_query(&f);
    println!(
        "  ∀x∃y(¬x ∨ y) → {}",
        xq_complexity::core::boolean_result(&q, &red::qbf_tree()).unwrap()
    );

    println!("\nThm 4.5 — streaming keeps live state small while output doubles:");
    let t = xq_complexity::xtree::parse_tree("<r/>").unwrap();
    for n in [2usize, 4, 6] {
        let mut src = String::from("<z/>");
        for i in 0..n {
            src = format!("for $v{i} in ({src}, {src}) return <z/>");
        }
        let q = parse_query(&src).unwrap();
        let (tokens, stats) = stream_query(&q, &t, u64::MAX).unwrap();
        println!(
            "  n={n}: {} output tokens, {} peak live cursors",
            tokens.len(),
            stats.peak_live_cursors
        );
    }
}
