//! The bytecode VM: compile a query once, execute it many times.
//!
//! The Figure 1 interpreter ([`crate::semantics`]) tree-walks the
//! [`Query`](crate::Query) AST per evaluation, chasing `Arc` nodes and
//! re-deriving scoping, the parallel-planner engagement decision, and the
//! `cv_monad::opt` verdict on every request. This module lowers the AST
//! once into a flat instruction sequence and keeps the derived facts with
//! it:
//!
//! * [`ir`] — the [`OpCode`]/[`InstrSeq`] instruction set;
//! * [`compile`] — AST → instructions, static slot resolution for
//!   binders, the document-independent [`compile::par_hint`],
//!   and the baked monad-algebra optimizer verdict ([`MaInfo`]);
//! * [`exec`] — the stack executor, byte- and budget-counter-identical
//!   to [`eval_with`](crate::eval_with) (the `vm_diff` differential suite
//!   is the proof obligation);
//! * [`cache`] — the process-wide, lock-striped [`PlanCache`] keyed by
//!   query text, so hot queries skip parse + compile entirely.
//!
//! [`CompiledPlan::disasm`] renders a stable disassembly listing; the
//! `vm_golden` suite pins it for representative queries so lowering
//! changes surface as reviewable golden-file diffs.

pub mod cache;
pub mod compile;
pub mod exec;
pub mod ir;

pub use cache::PlanCache;
pub use compile::{compile_query, compile_query_text, par_hint, CompiledPlan, MaInfo};
pub use exec::{exec_query, exec_with};
pub use ir::{InstrSeq, OpCode, VarRef};
