//! Property tests for the arena document store (vendored proptest):
//!
//! * `Tree → ArenaDoc → Tree` is the identity;
//! * `to_xml`/`parse` round-trips through the arena (and matches the
//!   `Rc`-tree serialization byte-for-byte);
//! * label interning preserves equality and ordering — checked on random
//!   label sets and across the three doubling-family generators.

use cv_xtree::{random_tree, ArenaDoc, DoublingFamily, LabelId, Tree, TreeGen};
use proptest::prelude::*;

/// Random tag names over the parser's accepted alphabet.
fn label_string() -> impl Strategy<Value = String> {
    const ALPHABET: [char; 8] = ['a', 'b', 'c', 'k', 'x', '.', '-', '_'];
    prop::collection::vec(0usize..ALPHABET.len(), 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Random trees via the deterministic generator: proptest draws the seed
/// and size, `TreeGen` supplies the document-ish shape.
fn tree() -> impl Strategy<Value = Tree> {
    (0u64..1 << 32, 1usize..80).prop_map(|(seed, size)| {
        let mut g = TreeGen::new(seed);
        random_tree(&mut g, size, &["a", "b", "c", "k", "long-label.x"])
    })
}

proptest! {
    /// Lossless conversion: the arena stores exactly the tree.
    #[test]
    fn tree_to_arena_to_tree_is_identity(t in tree()) {
        let arena = ArenaDoc::from_tree(&t);
        prop_assert_eq!(arena.len() as u64, t.size());
        prop_assert_eq!(arena.to_tree(), t);
    }

    /// Serialize/parse round-trips agree across representations.
    #[test]
    fn xml_round_trips_through_the_arena(t in tree()) {
        let xml = t.to_xml();
        let arena = ArenaDoc::parse(&xml).unwrap();
        prop_assert_eq!(arena.to_xml(), xml.clone());
        prop_assert_eq!(arena.to_tree(), t.clone());
        prop_assert_eq!(arena.tokens(), t.tokens());
        // And building the arena from the tree serializes identically too.
        prop_assert_eq!(ArenaDoc::from_tree(&t).to_xml(), xml);
    }

    /// Interning is injective and order-preserving on arbitrary strings.
    #[test]
    fn interning_preserves_label_equality_and_ordering(
        a in label_string(),
        b in label_string(),
    ) {
        let (ia, ib) = (LabelId::intern(&a), LabelId::intern(&b));
        prop_assert_eq!(ia == ib, a == b, "equality: {} vs {}", a, b);
        prop_assert_eq!(
            ia.label().cmp(&ib.label()),
            a.as_str().cmp(b.as_str()),
            "ordering: {} vs {}",
            a,
            b
        );
        let resolved = ia.label();
        prop_assert_eq!(resolved.as_str(), a.as_str());
    }
}

/// Interning across the three doubling-family generators: the arena
/// instance's interned labels must match the tree instance's labels
/// node-for-node (preorder), with id equality mirroring string equality
/// and resolved ordering mirroring string ordering.
#[test]
fn interning_is_faithful_across_the_doubling_families() {
    for family in DoublingFamily::ALL {
        for n in 0..6u32 {
            let t = family.tree(n);
            let arena = family.arena(n);
            let mut tree_labels = Vec::new();
            collect_labels(&t, &mut tree_labels);
            let arena_ids: Vec<LabelId> = (0..arena.len() as u32)
                .map(|i| arena.label_id(cv_xtree::NodeId(i)))
                .collect();
            assert_eq!(tree_labels.len(), arena_ids.len(), "{family} n={n}");
            for (x, (sx, ix)) in tree_labels.iter().zip(&arena_ids).enumerate() {
                assert_eq!(
                    ix.label().as_str(),
                    sx.as_str(),
                    "{family} n={n} node {x} resolves wrong"
                );
                for (sy, iy) in tree_labels.iter().zip(&arena_ids) {
                    assert_eq!(ix == iy, sx == sy, "{family} n={n} equality");
                    assert_eq!(
                        ix.label().cmp(&iy.label()),
                        sx.cmp(sy),
                        "{family} n={n} ordering"
                    );
                }
            }
        }
    }
}

fn collect_labels(t: &Tree, out: &mut Vec<cv_xtree::Label>) {
    out.push(t.label().clone());
    for c in t.children() {
        collect_labels(c, out);
    }
}
