//! A nondeterministic Turing machine model with a direct simulator — the
//! oracle against which the Theorem 5.6 reduction is validated.
//!
//! The machine model matches the proof's conventions: a bounded tape
//! (length `2^K`), a run of exactly `2^K` steps (terminating paths are
//! assumed to stay in a final state — we model that with explicit stay
//! self-loops), and a single read/write head whose position is encoded by
//! marking the scanned cell.

use std::collections::BTreeSet;

/// Head movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// Move left.
    Left,
    /// Move right.
    Right,
    /// Stay put.
    Stay,
}

/// One transition `(q, a) → (q′, b, move)`: in state `q` reading `a`,
/// write `b`, move, and enter `q′`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// Current state index.
    pub from: usize,
    /// Scanned symbol index.
    pub read: usize,
    /// Next state index.
    pub to: usize,
    /// Written symbol index.
    pub write: usize,
    /// Head movement.
    pub mv: Move,
}

/// A nondeterministic Turing machine over a small alphabet.
#[derive(Clone, Debug)]
pub struct Ntm {
    /// State names (index = state id). State 0 is the start state.
    pub states: Vec<String>,
    /// Tape symbols (index = symbol id). By convention symbol 0 is the
    /// blank `#`.
    pub alphabet: Vec<String>,
    /// Accepting state ids.
    pub accepting: Vec<usize>,
    /// The transition relation.
    pub transitions: Vec<Transition>,
}

/// An instantaneous description: tape contents, head position, state.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Config {
    /// Symbol ids, one per cell.
    pub tape: Vec<usize>,
    /// Head position.
    pub head: usize,
    /// Current state id.
    pub state: usize,
}

impl Ntm {
    /// The successor configurations of `c` (tape ends are walls: moves off
    /// the tape are simply not offered, matching the proof's "left end
    /// marker" convention).
    pub fn successors(&self, c: &Config) -> Vec<Config> {
        let mut out = Vec::new();
        for t in &self.transitions {
            if t.from != c.state || t.read != c.tape[c.head] {
                continue;
            }
            let new_head = match t.mv {
                Move::Left => {
                    if c.head == 0 {
                        continue;
                    }
                    c.head - 1
                }
                Move::Right => {
                    if c.head + 1 >= c.tape.len() {
                        continue;
                    }
                    c.head + 1
                }
                Move::Stay => c.head,
            };
            let mut tape = c.tape.clone();
            tape[c.head] = t.write;
            out.push(Config {
                tape,
                head: new_head,
                state: t.to,
            });
        }
        out
    }

    /// The start configuration for `input` (symbol ids) on a tape of
    /// `tape_len` cells, padded with blanks, head at cell 0.
    pub fn start_config(&self, input: &[usize], tape_len: usize) -> Config {
        assert!(input.len() <= tape_len, "input longer than the tape");
        let mut tape = vec![0usize; tape_len];
        tape[..input.len()].copy_from_slice(input);
        Config {
            tape,
            head: 0,
            state: 0,
        }
    }

    /// Whether some run of exactly `steps` steps starting from `start`
    /// ends in an accepting state — the acceptance notion of the Theorem
    /// 5.6 reduction (runs of exactly `2^K` steps; machines pad with stay
    /// loops).
    pub fn accepts_in(&self, start: &Config, steps: usize) -> bool {
        let mut frontier: BTreeSet<Config> = BTreeSet::new();
        frontier.insert(start.clone());
        for _ in 0..steps {
            let mut next = BTreeSet::new();
            for c in &frontier {
                for s in self.successors(c) {
                    next.insert(s);
                }
            }
            frontier = next;
        }
        frontier.iter().any(|c| self.accepting.contains(&c.state))
    }

    /// Adds stay self-loops `(q, a) → (q, a, Stay)` for every state and
    /// symbol, so that runs can idle — the w.l.o.g. padding of the proof.
    pub fn with_stay_loops(mut self) -> Ntm {
        for q in 0..self.states.len() {
            for a in 0..self.alphabet.len() {
                let t = Transition {
                    from: q,
                    read: a,
                    to: q,
                    write: a,
                    mv: Move::Stay,
                };
                if !self.transitions.contains(&t) {
                    self.transitions.push(t);
                }
            }
        }
        self
    }
}

/// A tiny machine zoo for tests and benches. All machines use the
/// alphabet `["#", "1"]` and carry stay loops.
pub mod zoo {
    use super::*;

    fn base(states: &[&str], accepting: &[usize], transitions: Vec<Transition>) -> Ntm {
        Ntm {
            states: states.iter().map(|s| s.to_string()).collect(),
            alphabet: vec!["#".into(), "1".into()],
            accepting: accepting.to_vec(),
            transitions,
        }
        .with_stay_loops()
    }

    /// Accepts iff the first tape cell holds `1` (checks and accepts).
    pub fn first_is_one() -> Ntm {
        base(
            &["q0", "acc"],
            &[1],
            vec![Transition {
                from: 0,
                read: 1,
                to: 1,
                write: 1,
                mv: Move::Stay,
            }],
        )
    }

    /// Never accepts (no transitions into the accepting state).
    pub fn reject_all() -> Ntm {
        base(&["q0", "acc"], &[1], vec![])
    }

    /// Accepts iff *some* cell within head reach holds `1` (walks right
    /// nondeterministically, may stop and check).
    pub fn some_one() -> Ntm {
        base(
            &["q0", "acc"],
            &[1],
            vec![
                Transition {
                    from: 0,
                    read: 1,
                    to: 1,
                    write: 1,
                    mv: Move::Stay,
                },
                Transition {
                    from: 0,
                    read: 0,
                    to: 0,
                    write: 0,
                    mv: Move::Right,
                },
            ],
        )
    }

    /// Accepts iff the first cell is blank, by writing a `1` into it
    /// first (exercises tape rewriting in the reduction).
    pub fn writes_then_accepts() -> Ntm {
        base(
            &["q0", "q1", "acc"],
            &[2],
            vec![
                Transition {
                    from: 0,
                    read: 0,
                    to: 1,
                    write: 1,
                    mv: Move::Stay,
                },
                Transition {
                    from: 1,
                    read: 1,
                    to: 2,
                    write: 1,
                    mv: Move::Stay,
                },
            ],
        )
    }

    /// Accepts iff cell 0 holds 1 after moving right then left again —
    /// exercises both head directions.
    pub fn right_then_left() -> Ntm {
        base(
            &["q0", "q1", "q2", "acc"],
            &[3],
            vec![
                Transition {
                    from: 0,
                    read: 1,
                    to: 1,
                    write: 1,
                    mv: Move::Right,
                },
                Transition {
                    from: 0,
                    read: 0,
                    to: 1,
                    write: 0,
                    mv: Move::Right,
                },
                Transition {
                    from: 1,
                    read: 0,
                    to: 2,
                    write: 0,
                    mv: Move::Left,
                },
                Transition {
                    from: 1,
                    read: 1,
                    to: 2,
                    write: 1,
                    mv: Move::Left,
                },
                Transition {
                    from: 2,
                    read: 1,
                    to: 3,
                    write: 1,
                    mv: Move::Stay,
                },
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_first_is_one() {
        let m = zoo::first_is_one();
        let yes = m.start_config(&[1, 0], 2);
        let no = m.start_config(&[0, 1], 2);
        assert!(m.accepts_in(&yes, 2));
        assert!(!m.accepts_in(&no, 2));
    }

    #[test]
    fn simulator_reject_all() {
        let m = zoo::reject_all();
        let c = m.start_config(&[1, 1], 2);
        assert!(!m.accepts_in(&c, 4));
    }

    #[test]
    fn simulator_some_one_walks_right() {
        let m = zoo::some_one();
        let far = m.start_config(&[0, 0, 0, 1], 4);
        assert!(m.accepts_in(&far, 4), "reaches the 1 in 3 moves + accept");
        let none = m.start_config(&[0, 0, 0, 0], 4);
        assert!(!m.accepts_in(&none, 4));
        // Too few steps to reach the far 1.
        assert!(!m.accepts_in(&far, 2));
    }

    #[test]
    fn simulator_respects_walls() {
        let m = zoo::right_then_left();
        let c = m.start_config(&[1], 1);
        // Cannot move right on a 1-cell tape; only stay loops fire.
        assert!(!m.accepts_in(&c, 4));
    }

    #[test]
    fn writes_change_the_tape() {
        let m = zoo::writes_then_accepts();
        assert!(m.accepts_in(&m.start_config(&[0, 0], 2), 2));
        assert!(!m.accepts_in(&m.start_config(&[1, 0], 2), 2));
    }

    #[test]
    fn stay_loops_pad_runs() {
        let m = zoo::first_is_one();
        let yes = m.start_config(&[1, 0], 2);
        // Acceptance must survive longer exact-length runs.
        for steps in [1, 2, 3, 8] {
            assert!(m.accepts_in(&yes, steps), "steps = {steps}");
        }
    }
}
