//! E11 (Thm 2.2): derived operations vs built-ins.
use criterion::{criterion_group, criterion_main, Criterion};
use cv_monad::derived::derived_diff;
use cv_monad::{eval, CollectionKind, Expr};
use cv_value::Value;

fn bench(c: &mut Criterion) {
    let r: Vec<Value> = (0..60).map(|i| Value::atom(format!("r{i}"))).collect();
    let s: Vec<Value> = (0..60)
        .filter(|i| i % 2 == 0)
        .map(|i| Value::atom(format!("r{i}")))
        .collect();
    let input = Value::tuple([("R", Value::set(r)), ("S", Value::set(s))]);
    let builtin = Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into());
    let derived = derived_diff();
    let mut g = c.benchmark_group("derived_ops");
    g.sample_size(20);
    g.bench_function("difference_builtin", |b| {
        b.iter(|| eval(&builtin, CollectionKind::Set, &input).unwrap())
    });
    g.bench_function("difference_derived_ex_2_4", |b| {
        b.iter(|| eval(&derived, CollectionKind::Set, &input).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
