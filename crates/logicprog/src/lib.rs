//! Nonrecursive logic programming with function symbols and the
//! Appendix A.1 reduction from monad algebra (Koch, PODS 2005).
//!
//! The appendix gives the second proof of Theorem 5.2: every
//! `M∪[=atomic]` query reduces (in LOGSPACE) to the *success problem* of
//! a nonrecursive logic program with one binary function symbol — a
//! problem NEXPTIME-complete by Dantsin & Voronkov. Terms here are the
//! nested paths of the path-based semantics ([`Term`]); predicates are
//! binary `p(X, v)` with `X` a map-depth prefix and `v` a path into the
//! value below it.
//!
//! The crate provides
//!
//! * [`Program`] — rules with term patterns, checked nonrecursive, and a
//!   stratified bottom-up evaluator;
//! * [`ma_to_lp`] — the appendix's translation, one predicate per
//!   pipeline position, validated against the Figure 4 path semantics
//!   (`goal(e, p)` holds iff `1.p ∈ [[Q]]({1.⟨⟩})`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;
use xq_paths::Term;

/// A term pattern: a term with variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pat {
    /// A logic variable.
    Var(Rc<str>),
    /// A constant symbol.
    Sym(Rc<str>),
    /// The binary function symbol `f(head, tail)` (path `head.tail`).
    Pair(Rc<Pat>, Rc<Pat>),
}

impl Pat {
    /// A variable pattern.
    pub fn var(name: &str) -> Pat {
        Pat::Var(Rc::from(name))
    }

    /// A constant pattern.
    pub fn sym(name: &str) -> Pat {
        Pat::Sym(Rc::from(name))
    }

    /// `head.tail`.
    pub fn pair(head: Pat, tail: Pat) -> Pat {
        Pat::Pair(Rc::new(head), Rc::new(tail))
    }

    fn matches(&self, t: &Term, bindings: &mut BTreeMap<Rc<str>, Term>) -> bool {
        match self {
            Pat::Var(v) => match bindings.get(v) {
                Some(bound) => bound == t,
                None => {
                    bindings.insert(v.clone(), t.clone());
                    true
                }
            },
            Pat::Sym(s) => matches!(t, Term::Sym(x) if x == s),
            Pat::Pair(h, tl) => match t {
                Term::Pair(th, tt) => h.matches(th, bindings) && tl.matches(tt, bindings),
                Term::Sym(_) => false,
            },
        }
    }

    fn instantiate(&self, bindings: &BTreeMap<Rc<str>, Term>) -> Option<Term> {
        match self {
            Pat::Var(v) => bindings.get(v).cloned(),
            Pat::Sym(s) => Some(Term::Sym(s.clone())),
            Pat::Pair(h, t) => Some(Term::cons(
                h.instantiate(bindings)?,
                t.instantiate(bindings)?,
            )),
        }
    }

    fn size(&self) -> u64 {
        match self {
            Pat::Var(_) | Pat::Sym(_) => 1,
            Pat::Pair(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Pat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pat::Var(v) => write!(f, "{}", v.to_uppercase()),
            Pat::Sym(s) => write!(f, "{s}"),
            Pat::Pair(h, t) => {
                match &**h {
                    Pat::Pair(_, _) => write!(f, "({h})")?,
                    other => write!(f, "{other}")?,
                }
                write!(f, ".{t}")
            }
        }
    }
}

/// A body literal `p(a1, a2)` (positive only — the appendix's main
/// reduction is for the negation-free language `M∪[=atomic]`).
#[derive(Clone, Debug)]
pub struct Literal {
    /// Predicate id.
    pub pred: usize,
    /// Argument patterns (arity 2 throughout the reduction).
    pub args: Vec<Pat>,
}

/// A rule `head(args) ← body1, body2, …`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Head predicate id.
    pub head: usize,
    /// Head argument patterns.
    pub head_args: Vec<Pat>,
    /// Body literals, evaluated left to right.
    pub body: Vec<Literal>,
}

/// A nonrecursive logic program: predicates indexed `0..`, rules for each.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Display names of the predicates.
    pub pred_names: Vec<String>,
    /// The rules (facts are rules with empty bodies and ground heads).
    pub rules: Vec<Rule>,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The program is recursive (a rule's body mentions a predicate not
    /// strictly smaller in the dependency order).
    Recursive(String),
    /// A head variable is not bound by the body (not range-restricted).
    NotRangeRestricted(String),
    /// Extension size budget exceeded.
    Budget(usize),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Recursive(p) => write!(f, "recursive predicate {p}"),
            LpError::NotRangeRestricted(r) => write!(f, "rule not range-restricted: {r}"),
            LpError::Budget(n) => write!(f, "extension budget exceeded ({n} facts)"),
        }
    }
}

impl std::error::Error for LpError {}

impl Program {
    /// Registers a predicate, returning its id.
    pub fn pred(&mut self, name: impl Into<String>) -> usize {
        self.pred_names.push(name.into());
        self.pred_names.len() - 1
    }

    /// Adds a rule.
    pub fn rule(&mut self, head: usize, head_args: Vec<Pat>, body: Vec<Literal>) {
        self.rules.push(Rule {
            head,
            head_args,
            body,
        });
    }

    /// Adds a ground fact.
    pub fn fact(&mut self, head: usize, args: Vec<Pat>) {
        self.rule(head, args, Vec::new());
    }

    /// Program size: total pattern symbols plus predicate-name lengths —
    /// the measure in which the appendix translation is `O(n · log n)`.
    pub fn size(&self) -> u64 {
        let names: u64 = self
            .rules
            .iter()
            .map(|r| {
                self.pred_names[r.head].len() as u64
                    + r.body
                        .iter()
                        .map(|l| self.pred_names[l.pred].len() as u64)
                        .sum::<u64>()
            })
            .sum();
        let pats: u64 = self
            .rules
            .iter()
            .map(|r| {
                r.head_args.iter().map(Pat::size).sum::<u64>()
                    + r.body
                        .iter()
                        .flat_map(|l| l.args.iter())
                        .map(Pat::size)
                        .sum::<u64>()
            })
            .sum();
        names + pats
    }

    fn check_nonrecursive(&self) -> Result<(), LpError> {
        for r in &self.rules {
            for l in &r.body {
                if l.pred >= r.head {
                    return Err(LpError::Recursive(self.pred_names[r.head].clone()));
                }
            }
        }
        Ok(())
    }

    /// Bottom-up evaluation: the extension of every predicate, in order.
    /// `max_facts` bounds the total number of derived facts (extensions
    /// can be singly exponential).
    pub fn evaluate(&self, max_facts: usize) -> Result<Vec<BTreeSet<Vec<Term>>>, LpError> {
        self.check_nonrecursive()?;
        let mut ext: Vec<BTreeSet<Vec<Term>>> = vec![BTreeSet::new(); self.pred_names.len()];
        let mut total = 0usize;
        let mut by_head: Vec<Vec<&Rule>> = vec![Vec::new(); self.pred_names.len()];
        for r in &self.rules {
            by_head[r.head].push(r);
        }
        for (head, rules) in by_head.iter().enumerate() {
            for rule in rules {
                self.fire(rule, &mut ext, &mut total, max_facts, head)?;
            }
        }
        Ok(ext)
    }

    fn fire(
        &self,
        rule: &Rule,
        ext: &mut [BTreeSet<Vec<Term>>],
        total: &mut usize,
        max_facts: usize,
        head: usize,
    ) -> Result<(), LpError> {
        #[allow(clippy::too_many_arguments)]
        fn join(
            prog: &Program,
            rule: &Rule,
            idx: usize,
            bindings: &mut BTreeMap<Rc<str>, Term>,
            ext: &mut [BTreeSet<Vec<Term>>],
            total: &mut usize,
            max_facts: usize,
            head: usize,
        ) -> Result<(), LpError> {
            if idx == rule.body.len() {
                let fact = rule
                    .head_args
                    .iter()
                    .map(|p| p.instantiate(bindings))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| LpError::NotRangeRestricted(prog.pred_names[head].clone()))?;
                if ext[head].insert(fact) {
                    *total += 1;
                    if *total > max_facts {
                        return Err(LpError::Budget(max_facts));
                    }
                }
                return Ok(());
            }
            let lit = &rule.body[idx];
            let candidates: Vec<Vec<Term>> = ext[lit.pred].iter().cloned().collect();
            for fact in candidates {
                if fact.len() != lit.args.len() {
                    continue;
                }
                let mut local = bindings.clone();
                if lit
                    .args
                    .iter()
                    .zip(&fact)
                    .all(|(p, t)| p.matches(t, &mut local))
                {
                    join(prog, rule, idx + 1, &mut local, ext, total, max_facts, head)?;
                }
            }
            Ok(())
        }
        join(
            self,
            rule,
            0,
            &mut BTreeMap::new(),
            ext,
            total,
            max_facts,
            head,
        )
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            write!(f, "{}(", self.pred_names[r.head])?;
            for (i, a) in r.head_args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
            if !r.body.is_empty() {
                write!(f, " <- ")?;
                for (i, l) in r.body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}(", self.pred_names[l.pred])?;
                    for (j, a) in l.args.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
            }
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The Appendix A.1 translation
// ---------------------------------------------------------------------------

/// Translation failure: the expression is outside the appendix fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UntranslatableOp(pub String);

impl fmt::Display for UntranslatableOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation outside the Appendix A.1 fragment: {}", self.0)
    }
}

impl std::error::Error for UntranslatableOp {}

/// The translated program plus its distinguished goal predicate.
pub struct LpQuery {
    /// The logic program.
    pub program: Program,
    /// Goal predicate id (the appendix's `[[Q]]`).
    pub goal: usize,
}

struct Tr {
    prog: Program,
}

fn term_pat(t: &Term) -> Pat {
    match t {
        Term::Sym(s) => Pat::Sym(s.clone()),
        Term::Pair(a, b) => Pat::pair(term_pat(a), term_pat(b)),
    }
}

impl Tr {
    fn fresh(&mut self) -> usize {
        self.prog.pred(format!("p{}", self.prog.pred_names.len()))
    }

    fn go(&mut self, e: &cv_monad::Expr, input: usize) -> Result<usize, UntranslatableOp> {
        use cv_monad::derived::sigma_gamma;
        use cv_monad::{Cond, EqMode, Expr, Operand};
        let x = || Pat::var("x");
        let v = || Pat::var("v");
        match e {
            Expr::Id => Ok(input),
            Expr::Compose(f, g) => {
                let mid = self.go(f, input)?;
                self.go(g, mid)
            }
            Expr::Const(c) => {
                // One rule per root-to-leaf path of the constant.
                let out = self.fresh();
                for path in xq_paths::value_paths(c) {
                    self.prog.rule(
                        out,
                        vec![x(), term_pat(&path)],
                        vec![Literal {
                            pred: input,
                            args: vec![x(), v()],
                        }],
                    );
                }
                Ok(out)
            }
            Expr::EmptyColl => Ok(self.fresh()), // no rules: empty extension
            Expr::Sng => {
                let out = self.fresh();
                // p'(X, 1.v) ← p(X, v).
                self.prog.rule(
                    out,
                    vec![x(), Pat::pair(Pat::sym("1"), v())],
                    vec![Literal {
                        pred: input,
                        args: vec![x(), v()],
                    }],
                );
                Ok(out)
            }
            Expr::Flatten => {
                let out = self.fresh();
                // p'(X, (i.j).v) ← p(X, i.j.v).
                self.prog.rule(
                    out,
                    vec![x(), Pat::pair(Pat::pair(Pat::var("i"), Pat::var("j")), v())],
                    vec![Literal {
                        pred: input,
                        args: vec![x(), Pat::pair(Pat::var("i"), Pat::pair(Pat::var("j"), v()))],
                    }],
                );
                Ok(out)
            }
            Expr::Proj(a) => {
                let out = self.fresh();
                // p'(X, v) ← p(X, A.v).
                self.prog.rule(
                    out,
                    vec![x(), v()],
                    vec![Literal {
                        pred: input,
                        args: vec![x(), Pat::pair(Pat::sym(a.as_str()), v())],
                    }],
                );
                Ok(out)
            }
            Expr::PairWith(aj) => {
                let out = self.fresh();
                let i = || Pat::var("i");
                // p'(X, i.Aj.v) ← p(X, Aj.i.v).
                self.prog.rule(
                    out,
                    vec![x(), Pat::pair(i(), Pat::pair(Pat::sym(aj.as_str()), v()))],
                    vec![Literal {
                        pred: input,
                        args: vec![x(), Pat::pair(Pat::sym(aj.as_str()), Pat::pair(i(), v()))],
                    }],
                );
                // p'(X, i.Ak.w) ← p(X, Aj.i.v), p(X, Ak.w)   [Ak ≠ Aj]
                // The appendix writes one rule per other attribute; since
                // patterns have no disequality guards, we emit a rule per
                // attribute name in the fixed vocabulary used by the
                // reduction queries.
                for ak in [
                    "1", "2", "t", "q", "A", "B", "C", "Cp", "s", "w", "wp", "T", "V",
                ] {
                    if ak == aj.as_str() {
                        continue;
                    }
                    self.prog.rule(
                        out,
                        vec![x(), Pat::pair(i(), Pat::pair(Pat::sym(ak), Pat::var("w")))],
                        vec![
                            Literal {
                                pred: input,
                                args: vec![
                                    x(),
                                    Pat::pair(Pat::sym(aj.as_str()), Pat::pair(i(), v())),
                                ],
                            },
                            Literal {
                                pred: input,
                                args: vec![x(), Pat::pair(Pat::sym(ak), Pat::var("w"))],
                            },
                        ],
                    );
                }
                Ok(out)
            }
            Expr::MkTuple(fields) => {
                if fields.is_empty() {
                    let out = self.fresh();
                    // ⟨⟩ is a constant path of length one.
                    self.prog.rule(
                        out,
                        vec![x(), Pat::sym("<>")],
                        vec![Literal {
                            pred: input,
                            args: vec![x(), v()],
                        }],
                    );
                    return Ok(out);
                }
                let mut subs = Vec::new();
                for (name, f) in fields {
                    subs.push((name.clone(), self.go(f, input)?));
                }
                let out = self.fresh();
                for (name, sub) in subs {
                    // p'(X, Ai.v) ← pi(X, v).
                    self.prog.rule(
                        out,
                        vec![x(), Pat::pair(Pat::sym(name.as_str()), v())],
                        vec![Literal {
                            pred: sub,
                            args: vec![x(), v()],
                        }],
                    );
                }
                Ok(out)
            }
            Expr::Union(f, g) => {
                let pf = self.go(f, input)?;
                let pg = self.go(g, input)?;
                let out = self.fresh();
                for (tag, sub) in [("1", pf), ("2", pg)] {
                    // p'(X, (t.i).v) ← p_sub(X, i.v).
                    self.prog.rule(
                        out,
                        vec![x(), Pat::pair(Pat::pair(Pat::sym(tag), Pat::var("i")), v())],
                        vec![Literal {
                            pred: sub,
                            args: vec![x(), Pat::pair(Pat::var("i"), v())],
                        }],
                    );
                }
                Ok(out)
            }
            Expr::Pred(Cond::Eq(Operand::Path(pa), Operand::Path(pb), EqMode::Atomic))
                if pa.len() == 1 && pb.len() == 1 =>
            {
                let out = self.fresh();
                // p'(X, 1.⟨⟩) ← p(X, A.v), p(X, B.v).
                self.prog.rule(
                    out,
                    vec![x(), Pat::pair(Pat::sym("1"), Pat::sym("<>"))],
                    vec![
                        Literal {
                            pred: input,
                            args: vec![x(), Pat::pair(Pat::sym(pa[0].as_str()), v())],
                        },
                        Literal {
                            pred: input,
                            args: vec![x(), Pat::pair(Pat::sym(pb[0].as_str()), v())],
                        },
                    ],
                );
                Ok(out)
            }
            Expr::Map(f) => {
                // start-map: pb((X.i), v) ← p(X, i.v).
                let pb = self.fresh();
                self.prog.rule(
                    pb,
                    vec![Pat::pair(x(), Pat::var("i")), v()],
                    vec![Literal {
                        pred: input,
                        args: vec![x(), Pat::pair(Pat::var("i"), v())],
                    }],
                );
                let pf = self.go(f, pb)?;
                // end-map: p'(X, i.v) ← pf((X.i), v).
                let out = self.fresh();
                self.prog.rule(
                    out,
                    vec![x(), Pat::pair(Pat::var("i"), v())],
                    vec![Literal {
                        pred: pf,
                        args: vec![Pat::pair(x(), Pat::var("i")), v()],
                    }],
                );
                Ok(out)
            }
            Expr::Select(c) => {
                // σ_γ is derived (Example 2.3); desugar and recurse.
                let desugared = sigma_gamma(Expr::Pred(c.clone()));
                self.go(&desugared, input)
            }
            other => Err(UntranslatableOp(other.to_string())),
        }
    }
}

/// Translates an `M∪[=atomic]` expression (core operations plus `σ` over
/// atomic conditions, desugared per Example 2.3) into a nonrecursive
/// logic program per Appendix A.1.
///
/// The program contains the fact `eps(e, dummy)` and derives
/// `goal(e, p)` exactly for the paths `p` with `1.p ∈ [[Q]]({1.⟨⟩})` in
/// the Figure 4 path semantics.
pub fn ma_to_lp(expr: &cv_monad::Expr) -> Result<LpQuery, UntranslatableOp> {
    let mut tr = Tr {
        prog: Program::default(),
    };
    let eps = tr.prog.pred("eps");
    tr.prog.fact(eps, vec![Pat::sym("e"), Pat::sym("dummy")]);
    let goal = tr.go(expr, eps)?;
    Ok(LpQuery {
        program: tr.prog,
        goal,
    })
}

/// Runs the translated program and reports whether the goal predicate is
/// nonempty — the success problem.
pub fn lp_succeeds(q: &LpQuery, max_facts: usize) -> Result<bool, LpError> {
    let ext = q.program.evaluate(max_facts)?;
    Ok(!ext[q.goal].is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_monad::{Cond, Expr, Operand};
    use cv_value::parse_value;
    use xq_paths::{eval_paths, parse_term};

    /// Checks the correspondence with the path semantics:
    /// `goal(e, p)` ⟺ `1.p ∈ [[Q]]({1.⟨⟩})`.
    fn check_against_path_semantics(q: &Expr) {
        let lp = ma_to_lp(q).unwrap_or_else(|e| panic!("translate {q}: {e}"));
        let ext = lp.program.evaluate(2_000_000).unwrap();
        let got: BTreeSet<Term> = ext[lp.goal]
            .iter()
            .map(|args| Term::cons(Term::sym("1"), args[1].clone()))
            .collect();
        let want = eval_paths(q, &xq_paths::unit_input()).unwrap();
        assert_eq!(got, want, "query {q}\nprogram:\n{}", lp.program);
    }

    fn blowup(m: usize) -> Expr {
        let two = Expr::atom("0")
            .then(Expr::Sng)
            .union(Expr::atom("1").then(Expr::Sng));
        let mut q = two;
        for _ in 0..m {
            q = q.then(cv_monad::derived::product(Expr::Id, Expr::Id));
        }
        q
    }

    #[test]
    fn example_a1_program() {
        // (0∘sng) ∪ (1∘sng) — Example A.1's query in binary-union form.
        let q = Expr::atom("0")
            .then(Expr::Sng)
            .union(Expr::atom("1").then(Expr::Sng));
        let lp = ma_to_lp(&q).unwrap();
        let ext = lp.program.evaluate(10_000).unwrap();
        let goal_facts: BTreeSet<Term> = ext[lp.goal].iter().map(|a| a[1].clone()).collect();
        // {π | p6(ε, π)} = {(1.1).0, (2.1).1}
        let want: BTreeSet<Term> = [
            parse_term("(1.1).0").unwrap(),
            parse_term("(2.1).1").unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(goal_facts, want, "\n{}", lp.program);
    }

    #[test]
    fn example_a2_map_with_tuple() {
        // map(⟨C: πA, D: πB ∘ sng⟩) applied to a constructed input.
        let q = Expr::konst(parse_value("{<A: x, B: y>}").unwrap()).then(
            Expr::mk_tuple([
                ("C", Expr::proj("A")),
                ("D", Expr::proj("B").then(Expr::Sng)),
            ])
            .mapped(),
        );
        check_against_path_semantics(&q);
    }

    #[test]
    fn figure_5_running_example_through_lp() {
        check_against_path_semantics(&xq_paths::figure_5_query());
    }

    #[test]
    fn more_queries_against_path_semantics() {
        let cases = vec![
            Expr::atom("c").then(Expr::Sng),
            Expr::konst(parse_value("{a, b}").unwrap()).then(Expr::Sng.mapped()),
            Expr::konst(parse_value("{<A: u, B: u>, <A: u, B: w>}").unwrap())
                .then(Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B"))).mapped()),
            Expr::konst(parse_value("<A: {1, 2}, B: z>").unwrap()).then(Expr::pairwith("A")),
            Expr::konst(parse_value("{{a}, {b}}").unwrap()).then(Expr::Flatten),
            // σ is desugared per Example 2.3 on both sides: the native
            // Select of the path semantics keeps original member indexes,
            // while the derived form re-labels them, so the comparison
            // must use the same (desugared) query.
            Expr::konst(parse_value("{<A: p, B: p>, <A: p, B: q>}").unwrap()).then(
                cv_monad::derived::sigma_gamma(Expr::Pred(Cond::eq_atomic(
                    Operand::path("A"),
                    Operand::path("B"),
                ))),
            ),
            blowup(2),
        ];
        for q in cases {
            check_against_path_semantics(&q);
        }
    }

    #[test]
    fn boolean_success_matches_direct_evaluation() {
        let truthy = xq_paths::figure_5_query();
        let lp = ma_to_lp(&truthy).unwrap();
        assert!(lp_succeeds(&lp, 1_000_000).unwrap());
        let falsy = Expr::konst(parse_value("{<A: p, B: q>}").unwrap()).then(Expr::Select(
            Cond::eq_atomic(Operand::path("A"), Operand::path("B")),
        ));
        let lp = ma_to_lp(&falsy).unwrap();
        assert!(!lp_succeeds(&lp, 1_000_000).unwrap());
    }

    #[test]
    fn nonrecursive_check_rejects_cycles() {
        let mut p = Program::default();
        let a = p.pred("a");
        p.rule(
            a,
            vec![Pat::sym("x")],
            vec![Literal {
                pred: a,
                args: vec![Pat::var("y")],
            }],
        );
        assert!(matches!(p.evaluate(100), Err(LpError::Recursive(_))));
    }

    #[test]
    fn range_restriction_enforced() {
        let mut p = Program::default();
        let _a = p.pred("a");
        let b = p.pred("b");
        p.rule(b, vec![Pat::var("y")], vec![]); // b(Y) ← . with Y unbound
        assert!(matches!(
            p.evaluate(100),
            Err(LpError::NotRangeRestricted(_))
        ));
    }

    #[test]
    fn budget_guards_blowup() {
        let lp = ma_to_lp(&blowup(4)).unwrap();
        assert!(matches!(lp.program.evaluate(1000), Err(LpError::Budget(_))));
    }

    #[test]
    fn program_display_is_readable() {
        let q = Expr::atom("c").then(Expr::Sng);
        let lp = ma_to_lp(&q).unwrap();
        let s = lp.program.to_string();
        assert!(s.contains("<-"), "{s}");
        assert!(s.contains("eps"), "{s}");
    }

    #[test]
    fn untranslatable_ops_error() {
        assert!(ma_to_lp(&Expr::Not).is_err());
        assert!(ma_to_lp(&Expr::Unique).is_err());
    }

    #[test]
    fn translation_size_is_quasi_linear() {
        // |program| = O(n log n): the per-step growth must not accelerate.
        let sizes: Vec<u64> = [2usize, 4, 8, 16]
            .iter()
            .map(|&m| ma_to_lp(&blowup(m)).unwrap().program.size())
            .collect();
        let d1 = sizes[1] - sizes[0];
        let d3 = sizes[3] - sizes[2];
        // Doubling m doubles the query; the program grows ~linearly, so
        // differences grow at most ~linearly too.
        assert!(
            (d3 as f64) < 6.0 * d1 as f64,
            "growth accelerating: {sizes:?}"
        );
    }
}
