//! Composition elimination for Core XQuery (Koch PODS 2005, §7.2).
//!
//! Theorem 7.9: `XQ∼[=atomic, child, descendant, self, dos, not]` captures
//! `XQ[=atomic, child, descendant, self, not]` — every query with
//! composition (steps over constructed values, `let`-bound constructions,
//! `for` over arbitrary queries) can be rewritten into an equivalent
//! composition-free one. The price is size: the rewriting substitutes
//! constructions for variables, so it can blow up exponentially — which is
//! exactly the paper's succinctness statement (composition buys
//! exponential succinctness unless PSPACE = TA[2^O(n), O(n)]).
//!
//! The rewriter implements:
//!
//! * `let`-inlining (`(let $x := ⟨a⟩α⟨/a⟩) β ⊢ β[$x ⇒ ⟨a⟩α⟨/a⟩]`),
//! * the Lemma 7.8 rules for `(⟨a⟩α⟨/a⟩)/χ::ν`,
//! * the Figure 9 rules for `for`-expressions over constructed sources,
//! * the §7.2 case analysis for variables substituted into equalities.
//!
//! [`eliminate_composition`] returns the rewritten query together with a
//! [`Trace`] of rule applications (Figure 10 is reproduced as a test).

use cv_xtree::{Axis, NodeTest};
use std::sync::Arc;
use xq_core::ast::{Cond, EqMode, Query, Var};

// Trace plumbing is shared with the `cv_monad::opt` optimizer pass: both
// are rewriting systems whose derivations are pinned by tests (Figure 10
// here, the rule-catalog golden tests there).
pub use cv_monad::{Trace, TraceStep};

/// Rewriting failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The query uses deep equality on a constructed non-leaf value —
    /// outside the Theorem 7.9 fragment (`=atomic` only).
    DeepEqualityOnConstruction(String),
    /// Rewriting exceeded the size budget (the blowup can be exponential).
    SizeBudget(u64),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::DeepEqualityOnConstruction(c) => write!(
                f,
                "deep equality on a constructed value is outside Theorem 7.9: {c}"
            ),
            RewriteError::SizeBudget(n) => {
                write!(f, "rewriting exceeded the size budget ({n} nodes)")
            }
        }
    }
}

impl std::error::Error for RewriteError {}

struct Rewriter {
    fresh: usize,
    trace: Trace,
    max_size: u64,
}

impl Rewriter {
    fn fresh_var(&mut self) -> Var {
        self.fresh += 1;
        Var::fresh(self.fresh + 50_000)
    }

    fn check_size(&self, q: &Query) -> Result<(), RewriteError> {
        if q.size() > self.max_size {
            Err(RewriteError::SizeBudget(self.max_size))
        } else {
            Ok(())
        }
    }

    // ---- capture-avoiding substitution q[x ⇒ r], r a Var or Elem -------

    /// Renames binder `v` (which would capture a free variable of the
    /// replacement) to a fresh variable throughout `body`.
    fn rename_binder(&mut self, v: &Var, body: &Query) -> Result<(Var, Query), RewriteError> {
        let fresh = self.fresh_var();
        let renamed = self.subst_q(body, v, &Query::Var(fresh.clone()))?;
        Ok((fresh, renamed))
    }

    fn rename_binder_cond(&mut self, v: &Var, body: &Cond) -> Result<(Var, Cond), RewriteError> {
        let fresh = self.fresh_var();
        let renamed = self.subst_c(body, v, &Query::Var(fresh.clone()))?;
        Ok((fresh, renamed))
    }

    fn captures(r: &Query, v: &Var) -> bool {
        xq_core::free_vars(r).contains(v)
    }

    fn subst_q(&mut self, q: &Query, x: &Var, r: &Query) -> Result<Query, RewriteError> {
        Ok(match q {
            Query::Empty => Query::Empty,
            Query::Var(v) if v == x => r.clone(),
            Query::Var(_) => q.clone(),
            Query::Elem(a, b) => Query::elem(a.clone(), self.subst_q(b, x, r)?),
            Query::Seq(a, b) => Query::Seq(
                Arc::new(self.subst_q(a, x, r)?),
                Arc::new(self.subst_q(b, x, r)?),
            ),
            Query::Step(base, ax, nt) => Query::step(self.subst_q(base, x, r)?, *ax, nt.clone()),
            Query::For(v, s, b) | Query::Let(v, s, b) => {
                let is_let = matches!(q, Query::Let(_, _, _));
                let s = self.subst_q(s, x, r)?;
                let (v, b) = if v == x {
                    // x is shadowed in the body: nothing to substitute.
                    (v.clone(), (**b).clone())
                } else {
                    let (v, b) = if Self::captures(r, v) {
                        self.rename_binder(v, b)?
                    } else {
                        (v.clone(), (**b).clone())
                    };
                    (v.clone(), self.subst_q(&b, x, r)?)
                };
                if is_let {
                    Query::let_in(v, s, b)
                } else {
                    Query::for_in(v, s, b)
                }
            }
            Query::If(c, b) => Query::if_then(self.subst_c(c, x, r)?, self.subst_q(b, x, r)?),
        })
    }

    /// Substitutes into a condition, applying the §7.2 case analysis when a
    /// variable inside an equality is replaced by an element constructor.
    fn subst_c(&mut self, c: &Cond, x: &Var, r: &Query) -> Result<Cond, RewriteError> {
        Ok(match c {
            Cond::True => Cond::True,
            Cond::VarEq(a, b, mode) => {
                let a_hit = a == x;
                let b_hit = b == x;
                if !a_hit && !b_hit {
                    return Ok(c.clone());
                }
                match r {
                    Query::Var(y) => {
                        let na = if a_hit { y.clone() } else { a.clone() };
                        let nb = if b_hit { y.clone() } else { b.clone() };
                        Cond::VarEq(na, nb, *mode)
                    }
                    Query::Elem(tag, body) => {
                        self.trace.log("subst-eq", c);
                        let is_leaf = matches!(**body, Query::Empty);
                        if *mode == EqMode::Deep && !is_leaf {
                            return Err(RewriteError::DeepEqualityOnConstruction(c.to_string()));
                        }
                        if a_hit && b_hit {
                            // ⟨a⟩α⟨/a⟩ = ⟨a⟩α⟨/a⟩ is vacuously true.
                            Cond::True
                        } else {
                            let other = if a_hit { b.clone() } else { a.clone() };
                            Cond::ConstEq(other, tag.clone(), *mode)
                        }
                    }
                    other => {
                        unreachable!("substitution target is a var or element: {other}")
                    }
                }
            }
            Cond::ConstEq(a, tag, mode) => {
                if a != x {
                    return Ok(c.clone());
                }
                match r {
                    Query::Var(y) => Cond::ConstEq(y.clone(), tag.clone(), *mode),
                    Query::Elem(t2, body) => {
                        self.trace.log("subst-eq", c);
                        let is_leaf = matches!(**body, Query::Empty);
                        let equal = match mode {
                            // Atomic equality compares root labels.
                            EqMode::Atomic | EqMode::Mon => t2 == tag,
                            EqMode::Deep => t2 == tag && is_leaf,
                        };
                        if equal {
                            Cond::True
                        } else {
                            Cond::True.negate()
                        }
                    }
                    other => {
                        unreachable!("substitution target is a var or element: {other}")
                    }
                }
            }
            Cond::Query(q) => Cond::query(self.subst_q(q, x, r)?),
            Cond::Some(v, s, inner) | Cond::Every(v, s, inner) => {
                let is_some = matches!(c, Cond::Some(_, _, _));
                let s = self.subst_q(s, x, r)?;
                let (v, inner) = if v == x {
                    (v.clone(), (**inner).clone())
                } else {
                    let (v, inner) = if Self::captures(r, v) {
                        self.rename_binder_cond(v, inner)?
                    } else {
                        (v.clone(), (**inner).clone())
                    };
                    (v.clone(), self.subst_c(&inner, x, r)?)
                };
                if is_some {
                    Cond::some(v, s, inner)
                } else {
                    Cond::every(v, s, inner)
                }
            }
            Cond::And(a, b) => self.subst_c(a, x, r)?.and(self.subst_c(b, x, r)?),
            Cond::Or(a, b) => self.subst_c(a, x, r)?.or(self.subst_c(b, x, r)?),
            Cond::Not(a) => self.subst_c(a, x, r)?.negate(),
        })
    }

    // ---- the main normalizer ---------------------------------------------

    fn elim(&mut self, q: &Query) -> Result<Query, RewriteError> {
        self.check_size(q)?;
        Ok(match q {
            Query::Empty | Query::Var(_) => q.clone(),
            Query::Elem(a, b) => Query::elem(a.clone(), self.elim(b)?),
            Query::Seq(a, b) => Query::Seq(Arc::new(self.elim(a)?), Arc::new(self.elim(b)?)),
            Query::Step(base, ax, nt) => {
                let base = self.elim(base)?;
                self.push_step(base, *ax, nt)?
            }
            Query::For(x, s, b) => {
                let s = self.elim(s)?;
                let b = self.elim(b)?;
                self.push_for(x, s, b)?
            }
            Query::If(c, b) => {
                let c = self.elim_cond(c)?;
                Query::if_then(c, self.elim(b)?)
            }
            Query::Let(x, s, b) => {
                // (let $x := ⟨a⟩α⟨/a⟩) β ⊢ β[$x ⇒ ⟨a⟩α⟨/a⟩]; general
                // sources go through the Figure 9 for-rules.
                self.trace.log("elim.let", q);
                let s = self.elim(s)?;
                let b = self.elim(b)?;
                self.push_for(x, s, b)?
            }
        })
    }

    fn elim_cond(&mut self, c: &Cond) -> Result<Cond, RewriteError> {
        Ok(match c {
            Cond::True | Cond::VarEq(_, _, _) | Cond::ConstEq(_, _, _) => c.clone(),
            Cond::Query(q) => Cond::query(self.elim(q)?),
            Cond::Some(v, s, inner) => {
                // Normalize the source; if it is not a plain step, convert
                // to a query condition via `for` (Prop 3.1) and renormalize.
                let s = self.elim(s)?;
                let inner = self.elim_cond(inner)?;
                if matches!(&s, Query::Step(b, _, _) if matches!(&**b, Query::Var(_))) {
                    Cond::some(v.clone(), s, inner)
                } else {
                    let body = xq_core::cond_as_query(&inner);
                    let q = self.push_for(v, s, body)?;
                    Cond::query(q)
                }
            }
            Cond::Every(v, s, inner) => self
                .elim_cond(&Cond::Some(
                    v.clone(),
                    s.clone(),
                    Arc::new((**inner).clone().negate()),
                ))?
                .negate(),
            Cond::And(a, b) => self.elim_cond(a)?.and(self.elim_cond(b)?),
            Cond::Or(a, b) => self.elim_cond(a)?.or(self.elim_cond(b)?),
            Cond::Not(a) => self.elim_cond(a)?.negate(),
        })
    }

    /// Applies the Lemma 7.8 / step-pushing rules to `base/axis::ν`,
    /// assuming `base` is already normalized.
    fn push_step(&mut self, base: Query, axis: Axis, nt: &NodeTest) -> Result<Query, RewriteError> {
        self.check_size(&base)?;
        Ok(match &base {
            // Simplification: $x/self::* ⊢ $x (keeps Figure 10 exact).
            Query::Var(_) if axis == Axis::SelfAxis && *nt == NodeTest::Wildcard => {
                self.trace.log("simplify-self", &base);
                base
            }
            Query::Var(_) => Query::step(base, axis, nt.clone()),
            Query::Empty => {
                // ()/χ::ν ⊢ ()
                self.trace.log("Lem.7.8", &base);
                Query::Empty
            }
            Query::Seq(a, b) => {
                // (α β)/χ::ν ⊢ (α/χ::ν) (β/χ::ν)
                self.trace.log("Lem.7.8", &base);
                let (a, b) = ((**a).clone(), (**b).clone());
                Query::Seq(
                    Arc::new(self.push_step(a, axis, nt)?),
                    Arc::new(self.push_step(b, axis, nt)?),
                )
            }
            Query::For(v, s, b) => {
                // (for $x in α return β)/χ::ν ⊢ for $x in α return β/χ::ν
                self.trace.log("Lem.7.8", &base);
                let inner = self.push_step((**b).clone(), axis, nt)?;
                Query::For(v.clone(), s.clone(), Arc::new(inner))
            }
            Query::If(c, b) => {
                // (if φ then α)/χ::ν ⊢ if φ then α/χ::ν
                self.trace.log("Lem.7.8", &base);
                let inner = self.push_step((**b).clone(), axis, nt)?;
                Query::If(c.clone(), Arc::new(inner))
            }
            Query::Step(_, _, _) => {
                // ($x/χ::ν)/χ′::ν′ ⊢ for $y in $x/χ::ν return $y/χ′::ν′
                self.trace.log("Lem.7.8", &base);
                let y = self.fresh_var();
                let body = self.push_step(Query::Var(y.clone()), axis, nt)?;
                Query::for_in(y, base, body)
            }
            Query::Elem(a, body) => {
                self.trace.log("Lem.7.8", &base);
                let alpha = (**body).clone();
                match (axis, nt) {
                    // (⟨a⟩α⟨/a⟩)/ν ⊢ α/self::ν
                    (Axis::Child, nt) => self.push_step(alpha, Axis::SelfAxis, nt)?,
                    // self: compare tags
                    (Axis::SelfAxis, NodeTest::Tag(b)) if b != a => Query::Empty,
                    (Axis::SelfAxis, _) => base.clone(),
                    // (⟨a⟩α⟨/a⟩)//ν ⊢ α/dos::ν
                    (Axis::Descendant, nt) => self.push_step(alpha, Axis::DescendantOrSelf, nt)?,
                    // dos: keep self if the tag matches, then recurse
                    (Axis::DescendantOrSelf, nt) => {
                        let below = self.push_step(alpha, Axis::DescendantOrSelf, nt)?;
                        let keep_self = match nt {
                            NodeTest::Wildcard => true,
                            NodeTest::Tag(b) => b == a,
                        };
                        if keep_self {
                            Query::Seq(Arc::new(base.clone()), Arc::new(below))
                        } else {
                            below
                        }
                    }
                }
            }
            Query::Let(_, _, _) => unreachable!("lets are eliminated before stepping"),
        })
    }

    /// Applies the Figure 9 rules to `for x in source return body`, both
    /// sides already normalized.
    fn push_for(&mut self, x: &Var, source: Query, body: Query) -> Result<Query, RewriteError> {
        self.check_size(&source)?;
        self.check_size(&body)?;
        Ok(match source {
            // (1) for $x in () return α ⊢ ()
            Query::Empty => {
                self.trace.log("Fig.9(1)", &source);
                Query::Empty
            }
            // (2) for $x in ⟨a⟩α⟨/a⟩ return β ⊢ β[$x ⇒ ⟨a⟩α⟨/a⟩]
            Query::Elem(_, _) => {
                self.trace.log("Fig.9(2)", &source);
                let substituted = self.subst_q(&body, x, &source)?;
                // The substitution may create new redexes (steps on the
                // element, equalities with it) — renormalize.
                self.elim(&substituted)?
            }
            // (3) for $x in (α β) return γ ⊢ (for…α…γ) (for…β…γ)
            Query::Seq(a, b) => {
                self.trace
                    .log("Fig.9(3)", &Query::Seq(a.clone(), b.clone()));
                let left = self.push_for(x, (*a).clone(), body.clone())?;
                let right = self.push_for(x, (*b).clone(), body)?;
                Query::Seq(Arc::new(left), Arc::new(right))
            }
            // (4) for $y in (for $x in α return β) return γ
            //     ⊢ for $x in α return (for $y in β return γ)
            Query::For(v, s, b) => {
                self.trace
                    .log("Fig.9(4)", &Query::For(v.clone(), s.clone(), b.clone()));
                // Avoid capture: if v occurs free in the outer body, rename.
                let (v, b) = if xq_core::free_vars(&body).contains(&v) {
                    let v2 = self.fresh_var();
                    let renamed = self.subst_q(&b, &v, &Query::Var(v2.clone()))?;
                    (v2, renamed)
                } else {
                    (v, (*b).clone())
                };
                let inner = self.push_for(x, b, body)?;
                Query::for_in(v, (*s).clone(), inner)
            }
            // (5) for $x in (if φ then α) return β
            //     ⊢ for $x in α return if φ then β
            Query::If(c, a) => {
                self.trace.log("Fig.9(5)", &Query::If(c.clone(), a.clone()));
                let wrapped = Query::If(c, Arc::new(body));
                self.push_for(x, (*a).clone(), wrapped)?
            }
            // (6) for $y in $x return α ⊢ α[$y ⇒ $x]
            Query::Var(v) => {
                self.trace.log("Fig.9(6)", &v);
                let substituted = self.subst_q(&body, x, &Query::Var(v))?;
                self.elim(&substituted)?
            }
            // Already a step on a variable: done.
            s @ Query::Step(_, _, _) => Query::for_in(x.clone(), s, body),
            Query::Let(_, _, _) => unreachable!("lets are eliminated first"),
        })
    }
}

/// Rewrites a `XQ[=atomic, child, descendant, self, dos, not]` query into
/// an equivalent composition-free (`XQ∼`) query per Theorem 7.9, returning
/// the result and the rule trace. `max_size` bounds the intermediate query
/// size (the blowup is exponential in the worst case — Theorem 7.9's
/// succinctness statement).
pub fn eliminate_composition(q: &Query, max_size: u64) -> Result<(Query, Trace), RewriteError> {
    let mut rw = Rewriter {
        fresh: 0,
        trace: Trace::default(),
        max_size,
    };
    let out = rw.elim(q)?;
    // Final lowering: XQ∼ conditions are queries, `var = var`, or
    // `$z = ⟨a/⟩` (Prop 7.1) — eliminate `true`/`and`/`or`/`some` forms
    // the rewriting may have left behind.
    let out = xq_core::to_xq_tilde(&out);
    Ok((out, rw.trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_xtree::parse_tree;
    use xq_core::{boolean_result, eval_query, is_xq_tilde, parse_query};

    fn check_equivalent(src: &str, docs: &[&str]) -> (Query, Query, Trace) {
        let q = parse_query(src).unwrap();
        let (out, trace) = eliminate_composition(&q, 1_000_000).unwrap();
        assert!(
            is_xq_tilde(&out),
            "rewritten query is not XQ∼: {out}\n(from {src})"
        );
        for doc in docs {
            let t = parse_tree(doc).unwrap();
            let want = eval_query(&q, &t).unwrap();
            let got = eval_query(&out, &t).unwrap();
            assert_eq!(got, want, "query {src} on {doc}\nrewritten: {out}");
        }
        (q, out, trace)
    }

    #[test]
    fn figure_10_example_rewrites_to_the_paper_result() {
        // let $x := ⟨a⟩{for $w in $root/* return ⟨b⟩{$w}⟨/b⟩}⟨/a⟩
        // for $y in $x/b return $y/*       ⊢*    for $w in $root/* return $w
        let src = "let $x := <a>{ for $w in $root/* return <b>{$w}</b> }</a> \
                   return for $y in $x/b return $y/*";
        let (_, out, trace) = check_equivalent(src, &["<r><p><q/></p><s/></r>", "<r/>"]);
        assert_eq!(
            out,
            parse_query("for $w in $root/* return $w").unwrap(),
            "expected the Figure 10 result, got {out}"
        );
        // The trace exercises the let-elimination, Lemma 7.8, and the
        // Figure 9 rules, as in the paper's derivation.
        let rules = trace.rules();
        assert!(rules.contains(&"elim.let"), "{rules:?}");
        assert!(rules.contains(&"Lem.7.8"), "{rules:?}");
        assert!(rules.iter().any(|r| r.starts_with("Fig.9")), "{rules:?}");
    }

    #[test]
    fn intro_books_example_rewrites() {
        // The paper's non-composition-free intro query:
        // ⟨books⟩{let $x := ⟨a⟩{for $w in /bib/book return ⟨b⟩{$w}⟨/b⟩}⟨/a⟩
        //   for $y in $x/b return $y/*}⟨/books⟩
        let src = "<books>{ let $x := <a>{ for $w in $root/book return \
                   <b>{$w}</b> }</a> return for $y in $x/b return $y/* }</books>";
        let (_, out, _) = check_equivalent(
            src,
            &["<bib><book><t1/></book><book><t2/></book></bib>", "<bib/>"],
        );
        // Equivalent to ⟨books⟩{for $w in $root/book return $w}⟨/books⟩.
        assert_eq!(
            out,
            parse_query("<books>{ for $w in $root/book return $w }</books>").unwrap()
        );
    }

    #[test]
    fn for_over_for_uses_rule_4() {
        let src = "for $y in (for $w in $root/b return <b>{$w}</b>) return $y/*";
        let (_, out, trace) = check_equivalent(src, &["<r><b><x/></b><b><y/></b></r>", "<r/>"]);
        assert!(trace.rules().contains(&"Fig.9(4)"));
        assert_eq!(out, parse_query("for $w in $root/b return $w").unwrap());
    }

    #[test]
    fn steps_on_elements_follow_lemma_7_8() {
        for (src, doc) in [
            ("(<a><b/><c/></a>)/b", "<r/>"),
            ("(<a><b/><c/></a>)/*", "<r/>"),
            ("(<a><b><c/></b></a>)//c", "<r/>"),
            ("(<a><b/></a>)/self::a", "<r/>"),
            ("(<a><b/></a>)/self::z", "<r/>"),
            ("(<a><b><a/></b></a>)//a", "<r/>"),
            ("((<a><b/></a>, <c><b/></c>))/b", "<r/>"),
            ("(if (true) then <a><b/></a>)/b", "<r/>"),
        ] {
            check_equivalent(src, &[doc]);
        }
    }

    #[test]
    fn equality_substitution_cases() {
        // $x bound to a leaf element, compared atomically.
        let src = "let $x := <true/> return \
                   for $y in $root/* return if ($x =atomic $y) then <hit/>";
        check_equivalent(src, &["<r><true/><false/></r>", "<r/>"]);
        // Both sides the same construction: vacuous truth.
        let src = "let $x := <k/> return if ($x =atomic $x) then <y/>";
        check_equivalent(src, &["<r/>"]);
        // Nonempty construction compared atomically (label comparison).
        let src = "let $x := <true><why/></true> return \
                   for $y in $root/* return if ($x =atomic $y) then <hit/>";
        check_equivalent(src, &["<r><true/><x/></r>"]);
    }

    #[test]
    fn deep_equality_on_construction_is_rejected() {
        let src = "let $x := <a><b/></a> return \
                   for $y in $root/* return if ($x = $y) then <hit/>";
        let q = parse_query(src).unwrap();
        assert!(matches!(
            eliminate_composition(&q, 1_000_000),
            Err(RewriteError::DeepEqualityOnConstruction(_))
        ));
    }

    #[test]
    fn size_budget_stops_exponential_blowup() {
        let q = parse_query(&let_chain(12)).unwrap();
        assert!(matches!(
            eliminate_composition(&q, 10_000),
            Err(RewriteError::SizeBudget(_))
        ));
    }

    /// A `let`-chain where each binding doubles the previous one — the
    /// succinctness family for experiment E10.
    pub(crate) fn let_chain(depth: usize) -> String {
        let mut bindings = String::from("let $x0 := <a>{ $root/* }</a> return ");
        for i in 1..=depth {
            bindings.push_str(&format!(
                "let $x{i} := <a>{{ $x{prev}/* , $x{prev}/* }}</a> return ",
                prev = i - 1
            ));
        }
        format!("<out>{{ {bindings} $x{depth}/* }}</out>")
    }

    #[test]
    fn let_chain_blowup_is_exponential() {
        // |rewritten| roughly doubles with each extra let (Theorem 7.9's
        // succinctness gap).
        let mut sizes = Vec::new();
        for depth in 1..=6 {
            let q = parse_query(&let_chain(depth)).unwrap();
            let (out, _) = eliminate_composition(&q, 10_000_000).unwrap();
            sizes.push(out.size());
        }
        for w in sizes.windows(2) {
            assert!(
                w[1] as f64 >= 1.7 * w[0] as f64,
                "expected exponential growth, got {sizes:?}"
            );
        }
        // And the rewritten queries stay equivalent.
        let q = parse_query(&let_chain(3)).unwrap();
        let (out, _) = eliminate_composition(&q, 10_000_000).unwrap();
        let t = parse_tree("<r><p/><q/></r>").unwrap();
        assert_eq!(
            boolean_result(&q, &t).unwrap(),
            boolean_result(&out, &t).unwrap()
        );
    }

    #[test]
    fn conditions_with_query_composition_are_rewritten() {
        let src = "<out>{ for $x in $root/a return \
                   if ((<w>{ $x/b }</w>)/b) then $x }</out>";
        check_equivalent(src, &["<r><a><b/></a><a><c/></a></r>", "<r/>"]);
    }

    #[test]
    fn capture_is_avoided_in_rule_4() {
        // The inner for variable collides with a variable free in the
        // outer body; rewriting must rename.
        let src = "for $y in (for $x in $root/a return <b>{$x}</b>) return \
                   for $x in $root/c return ($y/*, $x)";
        check_equivalent(src, &["<r><a><k/></a><c/></r>"]);
    }
}
