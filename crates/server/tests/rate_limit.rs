//! Per-tenant request-rate limiting: token buckets keyed by the `hello`
//! tenant, spending one token per well-formed `query` frame and
//! answering `rate_limited` (through the ordered response FIFO) when the
//! bucket is empty. Rate limits are orthogonal to budget quotas — a
//! refused frame never touches the pool, its admission gauge, or the
//! shed counter.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cv_xtree::{parse_tree, ArenaDoc};
use xq_server::{RateLimit, Server, ServerConfig};

fn docs() -> HashMap<String, Arc<ArenaDoc>> {
    let tree = parse_tree("<r><a/><b><k/></b><k/></r>").unwrap();
    let mut docs = HashMap::new();
    docs.insert("d0".to_string(), Arc::new(ArenaDoc::from_tree(&tree)));
    docs
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end_matches('\n').to_string()
    }

    fn query(&mut self, id: u64) -> String {
        self.send(&format!(
            r#"{{"op":"query","id":{id},"doc":"d0","query":"$root/b/k"}}"#
        ));
        self.recv()
    }
}

/// A pipelined burst against a no-refill bucket: exactly `burst`
/// queries are served, the rest answer `rate_limited`, and the
/// responses come back in submission order (refusals share the FIFO).
#[test]
fn empty_bucket_refuses_in_submission_order() {
    let mut rates = HashMap::new();
    rates.insert(
        "acme".to_string(),
        RateLimit {
            per_sec: 0.0,
            burst: 2,
        },
    );
    let server = Server::start(ServerConfig {
        rates,
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(&server);
    client.send(r#"{"op":"hello","tenant":"acme"}"#);
    let _ = client.recv();
    // Pipeline all four before reading anything.
    for id in 1..=4u64 {
        client.send(&format!(
            r#"{{"op":"query","id":{id},"doc":"d0","query":"$root/b/k"}}"#
        ));
    }
    for id in 1..=4u64 {
        let resp = client.recv();
        assert!(
            resp.contains(&format!(r#""id":{id}"#)),
            "responses out of order: got {resp} for id {id}"
        );
        if id <= 2 {
            assert!(resp.contains(r#""ok":true"#), "burst query refused: {resp}");
        } else {
            assert!(
                resp.contains(r#""code":"rate_limited""#),
                "over-burst query not refused: {resp}"
            );
        }
    }
    assert_eq!(server.stats().rate_limited.load(Ordering::Relaxed), 2);
    assert_eq!(server.stats().shed.load(Ordering::Relaxed), 0);
}

/// The bucket refills continuously at `per_sec`: after a refusal, a
/// short wait earns a fresh token.
#[test]
fn bucket_refills_at_the_configured_rate() {
    let mut rates = HashMap::new();
    rates.insert(
        "acme".to_string(),
        RateLimit {
            per_sec: 20.0,
            burst: 1,
        },
    );
    let server = Server::start(ServerConfig {
        rates,
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(&server);
    client.send(r#"{"op":"hello","tenant":"acme"}"#);
    let _ = client.recv();
    assert!(client.query(1).contains(r#""ok":true"#));
    assert!(client.query(2).contains(r#""code":"rate_limited""#));
    // 20 tokens/sec: 150ms earns one (50ms would do; headroom for CI).
    std::thread::sleep(Duration::from_millis(150));
    assert!(
        client.query(3).contains(r#""ok":true"#),
        "bucket never refilled"
    );
}

/// Buckets are per tenant (shared across a tenant's connections), and
/// `default_rate` covers tenants without an explicit entry — including
/// connections that never sent `hello`.
#[test]
fn buckets_are_per_tenant_and_default_rate_applies() {
    let mut rates = HashMap::new();
    rates.insert(
        "roomy".to_string(),
        RateLimit {
            per_sec: 0.0,
            burst: 100,
        },
    );
    let server = Server::start(ServerConfig {
        rates,
        default_rate: Some(RateLimit {
            per_sec: 0.0,
            burst: 1,
        }),
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    // The "roomy" tenant has its own deep bucket.
    let mut roomy = Client::connect(&server);
    roomy.send(r#"{"op":"hello","tenant":"roomy"}"#);
    let _ = roomy.recv();
    for id in 1..=5 {
        assert!(roomy.query(id).contains(r#""ok":true"#));
    }
    // An anonymous connection falls under default_rate (tenant
    // "default", one token, no refill)…
    let mut anon1 = Client::connect(&server);
    assert!(anon1.query(1).contains(r#""ok":true"#));
    assert!(anon1.query(2).contains(r#""code":"rate_limited""#));
    // …and the bucket is shared with every other anonymous connection.
    let mut anon2 = Client::connect(&server);
    assert!(
        anon2.query(1).contains(r#""code":"rate_limited""#),
        "anonymous connections must share the default-tenant bucket"
    );
    // The roomy tenant is unaffected throughout.
    assert!(roomy.query(6).contains(r#""ok":true"#));
}

/// A rate refusal is decided before pool admission: with a zero-token
/// bucket *and* a zero-capacity queue, the answer is `rate_limited`,
/// not `overloaded`, and the shed counter stays untouched.
#[test]
fn rate_refusal_never_reaches_the_admission_queue() {
    let server = Server::start(ServerConfig {
        queue_capacity: 0,
        default_rate: Some(RateLimit {
            per_sec: 0.0,
            burst: 0,
        }),
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(&server);
    let resp = client.query(1);
    assert!(
        resp.contains(r#""code":"rate_limited""#),
        "expected rate_limited ahead of admission: {resp}"
    );
    assert_eq!(server.stats().rate_limited.load(Ordering::Relaxed), 1);
    assert_eq!(server.stats().shed.load(Ordering::Relaxed), 0);
}
