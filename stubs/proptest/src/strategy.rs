//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of random values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Apply `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Build recursive values: `self` is the leaf strategy and `recurse`
    /// wraps an inner strategy into one for the next level up. `depth`
    /// bounds the nesting; the size-tuning parameters of the real API are
    /// accepted but ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so shallow values stay
            // reachable even at the outermost layer.
            let deeper = recurse(current).boxed();
            current = WeightedUnion::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between strategies; the expansion of `prop_oneof!`.
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                // span + 1 would wrap for a full-width 64-bit range.
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                lo + offset as $t
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
