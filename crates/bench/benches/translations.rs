//! E7 (Lemmas 3.2/3.3): translation cost and output size linearity.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xq_bench::{bib_document, books_query};
use xq_core::{ma_env, ma_query, Var};

fn bench(c: &mut Criterion) {
    let q = books_query();
    let mut g = c.benchmark_group("translations");
    g.sample_size(10);
    g.bench_function("ma_of_books_query", |b| {
        b.iter(|| ma_query(&q).unwrap().size())
    });
    for n in [10usize, 40] {
        let doc = bib_document(n);
        let expr = ma_query(&q).unwrap();
        g.bench_with_input(BenchmarkId::new("eval_translated", n), &doc, |b, doc| {
            let env = ma_env(&[(Var::root(), doc.clone())]);
            b.iter(|| cv_monad::eval(&expr, cv_monad::CollectionKind::List, &env).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
