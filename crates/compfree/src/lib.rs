//! Engines for composition-free Core XQuery (`XQ⁻`, Koch PODS 2005, §7.1).
//!
//! Because every variable of an `XQ⁻` query ranges exclusively over nodes
//! of the *input* tree (never over constructed intermediate results), two
//! special evaluation strategies exist:
//!
//! * [`NestedLoopEngine`] — Proposition 7.3's direct nested-loop
//!   evaluation. Bindings are [`NodeId`]s (one machine word each), so the
//!   working space is `O(|Q| · log |t|)`: the engine counts its live
//!   bindings to exhibit exactly that bound.
//! * [`witness_boolean`] — Proposition 7.6's NP procedure for the
//!   negation-free language: `for`/`some` become existential guesses
//!   (implemented as backtracking search), sound and complete for Boolean
//!   queries because `[[for …]]` is a concatenation over all the choices
//!   the guess ranges over.
//!
//! Both engines navigate the [`ArenaDoc`] store: axis scans are `u32`
//! range walks over contiguous spans, label tests and atomic equality are
//! O(1) interned-id compares, and result emission walks preorder spans —
//! the `Rc`-per-node `Document` is no longer on this path (ROADMAP
//! "Scale-out groundwork"). Since `ArenaDoc: Send + Sync`, one loaded
//! document can also serve nested-loop evaluations from many threads.

use cv_xtree::{ArenaDoc, LabelId, NodeId, Token, Tree};
use xq_core::ast::{Cond, EqMode, Query, Var};
use xq_core::fragments::is_composition_free;

/// Errors of the composition-free engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfError {
    /// The query is not in `XQ⁻` (run [`xq_core::to_composition_free`] or
    /// the full evaluator instead).
    NotCompositionFree,
    /// The witness-search engine only handles the negation-free fragment.
    NegationPresent,
    /// A free variable other than `$root` was encountered.
    UnboundVariable(String),
    /// Step budget exceeded.
    Budget,
}

impl std::fmt::Display for CfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfError::NotCompositionFree => f.write_str("query is not composition-free"),
            CfError::NegationPresent => {
                f.write_str("witness search requires a negation-free query")
            }
            CfError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            CfError::Budget => f.write_str("step budget exceeded"),
        }
    }
}

impl std::error::Error for CfError {}

/// Space/time counters for the nested-loop engine. The paper's bound
/// (Prop 7.3) is that `max_live_bindings` stays `O(|Q|)` — one pointer
/// per variable — regardless of the output size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Peak number of simultaneously live variable bindings.
    pub max_live_bindings: usize,
    /// Evaluation steps.
    pub steps: u64,
    /// Tokens emitted to the output sink (not working space).
    pub output_tokens: u64,
}

/// Proposition 7.3's nested-loop evaluator over an arena document.
pub struct NestedLoopEngine<'d> {
    doc: &'d ArenaDoc,
    max_steps: u64,
    stats: SpaceStats,
    env: Vec<(Var, NodeId)>,
}

impl<'d> NestedLoopEngine<'d> {
    /// Creates an engine for the document.
    pub fn new(doc: &'d ArenaDoc) -> Self {
        NestedLoopEngine {
            doc,
            max_steps: 100_000_000,
            stats: SpaceStats::default(),
            env: Vec::new(),
        }
    }

    /// Overrides the step budget.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// The counters accumulated by the last run.
    pub fn stats(&self) -> SpaceStats {
        self.stats
    }

    fn step(&mut self) -> Result<(), CfError> {
        self.stats.steps += 1;
        if self.stats.steps > self.max_steps {
            return Err(CfError::Budget);
        }
        Ok(())
    }

    fn lookup(&self, v: &Var) -> Result<NodeId, CfError> {
        self.env
            .iter()
            .rev()
            .find(|(name, _)| name == v)
            .map(|(_, id)| *id)
            .ok_or_else(|| CfError::UnboundVariable(v.name().to_string()))
    }

    /// Evaluates `q` (which must be `XQ⁻`), streaming the result's tag
    /// string into `out`. `$root` is bound to the document root.
    pub fn eval(&mut self, q: &Query, out: &mut Vec<Token>) -> Result<(), CfError> {
        if !is_composition_free(q) {
            return Err(CfError::NotCompositionFree);
        }
        self.stats = SpaceStats::default();
        self.env.clear();
        self.env.push((Var::root(), self.doc.root()));
        self.stats.max_live_bindings = 1;
        self.emit_query(q, out)
    }

    /// Decides the Boolean query per the §7.1 convention.
    pub fn boolean(&mut self, q: &Query) -> Result<bool, CfError> {
        let mut out = Vec::new();
        self.eval(q, &mut out)?;
        match q {
            Query::Elem(_, _) => Ok(out.len() > 2), // root has a child
            _ => Ok(!out.is_empty()),
        }
    }

    fn emit_node(&mut self, id: NodeId, out: &mut Vec<Token>) -> Result<(), CfError> {
        // One step per emitted node (as the recursive Rc walk charged),
        // paid up front; the walk itself is an iterative preorder over the
        // arena span — no recursion, so comb-deep subtrees are safe.
        let nodes = self.doc.subtree_len(id) as u64;
        self.stats.steps += nodes;
        if self.stats.steps > self.max_steps {
            return Err(CfError::Budget);
        }
        out.extend(self.doc.tokens_of(id));
        self.stats.output_tokens += 2 * nodes;
        Ok(())
    }

    fn emit_query(&mut self, q: &Query, out: &mut Vec<Token>) -> Result<(), CfError> {
        self.step()?;
        match q {
            Query::Empty => Ok(()),
            Query::Elem(a, body) => {
                out.push(Token::Open(a.clone()));
                self.stats.output_tokens += 1;
                self.emit_query(body, out)?;
                out.push(Token::Close(a.clone()));
                self.stats.output_tokens += 1;
                Ok(())
            }
            Query::Seq(x, y) => {
                self.emit_query(x, out)?;
                self.emit_query(y, out)
            }
            Query::Var(v) => {
                let id = self.lookup(v)?;
                self.emit_node(id, out)
            }
            Query::Step(base, axis, nt) => {
                let Query::Var(v) = &**base else {
                    return Err(CfError::NotCompositionFree);
                };
                let id = self.lookup(v)?;
                for n in self.doc.axis(id, *axis, nt) {
                    self.emit_node(n, out)?;
                }
                Ok(())
            }
            Query::For(x, source, body) => {
                let nodes = self.source_nodes(source)?;
                for n in nodes {
                    self.env.push((x.clone(), n));
                    self.stats.max_live_bindings = self.stats.max_live_bindings.max(self.env.len());
                    let r = self.emit_query(body, out);
                    self.env.pop();
                    r?;
                }
                Ok(())
            }
            Query::If(c, body) => {
                if self.cond(c)? {
                    self.emit_query(body, out)
                } else {
                    Ok(())
                }
            }
            Query::Let(_, _, _) => Err(CfError::NotCompositionFree),
        }
    }

    fn cond(&mut self, c: &Cond) -> Result<bool, CfError> {
        self.step()?;
        match c {
            Cond::True => Ok(true),
            Cond::VarEq(x, y, mode) => {
                let a = self.lookup(x)?;
                let b = self.lookup(y)?;
                Ok(match mode {
                    EqMode::Deep => self.doc.deep_eq(a, b),
                    // Atomic equality compares root labels (see xq-core) —
                    // one interned-id compare on the arena.
                    _ => self.doc.label_id(a) == self.doc.label_id(b),
                })
            }
            Cond::ConstEq(x, a, mode) => {
                let n = self.lookup(x)?;
                Ok(match mode {
                    EqMode::Deep => label_is(self.doc, n, a.as_str()) && self.doc.is_leaf(n),
                    _ => label_is(self.doc, n, a.as_str()),
                })
            }
            Cond::Some(x, source, sat) => {
                let nodes = self.source_nodes(source)?;
                for n in nodes {
                    self.env.push((x.clone(), n));
                    self.stats.max_live_bindings = self.stats.max_live_bindings.max(self.env.len());
                    let r = self.cond(sat);
                    self.env.pop();
                    if r? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Cond::Every(x, source, sat) => {
                let nodes = self.source_nodes(source)?;
                for n in nodes {
                    self.env.push((x.clone(), n));
                    self.stats.max_live_bindings = self.stats.max_live_bindings.max(self.env.len());
                    let r = self.cond(sat);
                    self.env.pop();
                    if !r? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Cond::And(a, b) => Ok(self.cond(a)? && self.cond(b)?),
            Cond::Or(a, b) => Ok(self.cond(a)? || self.cond(b)?),
            Cond::Not(a) => Ok(!self.cond(a)?),
            Cond::Query(_) => Err(CfError::NotCompositionFree),
        }
    }

    fn source_nodes(&mut self, source: &Query) -> Result<Vec<NodeId>, CfError> {
        let Query::Step(base, axis, nt) = source else {
            return Err(CfError::NotCompositionFree);
        };
        let Query::Var(v) = &**base else {
            return Err(CfError::NotCompositionFree);
        };
        let id = self.lookup(v)?;
        Ok(self.doc.axis(id, *axis, nt))
    }
}

/// Proposition 7.6's NP decision procedure for *negation-free* `XQ⁻`
/// Boolean queries: the modified semantics `[[·]]′` guesses one binding
/// per `for`, implemented here as backtracking search for a witness.
///
/// Returns the same Boolean as the nested-loop engine (soundness and
/// completeness per the Prop 7.6 argument), but touches only one
/// assignment of bindings at a time.
pub fn witness_boolean(q: &Query, tree: &Tree) -> Result<bool, CfError> {
    if !is_composition_free(q) {
        return Err(CfError::NotCompositionFree);
    }
    let doc = ArenaDoc::from_tree(tree);
    let mut env: Vec<(Var, NodeId)> = vec![(Var::root(), doc.root())];
    let found = match q {
        // Boolean convention: ⟨a⟩α⟨/a⟩ is true iff α produces anything.
        Query::Elem(_, body) => nonempty(&doc, body, &mut env)?,
        other => nonempty(&doc, other, &mut env)?,
    };
    Ok(found)
}

fn lookup(env: &[(Var, NodeId)], v: &Var) -> Result<NodeId, CfError> {
    env.iter()
        .rev()
        .find(|(name, _)| name == v)
        .map(|(_, id)| *id)
        .ok_or_else(|| CfError::UnboundVariable(v.name().to_string()))
}

/// Whether node `n`'s label is the string `a` — a lookup-only interned-id
/// compare (a never-interned constant matches nothing, and the query must
/// not grow the global interner).
fn label_is(doc: &ArenaDoc, n: NodeId, a: &str) -> bool {
    LabelId::lookup(a).is_some_and(|want| doc.label_id(n) == want)
}

/// Does `[[q]]′` have a nonempty instantiation?
fn nonempty(doc: &ArenaDoc, q: &Query, env: &mut Vec<(Var, NodeId)>) -> Result<bool, CfError> {
    match q {
        Query::Empty => Ok(false),
        Query::Elem(_, _) => Ok(true), // always constructs a node
        Query::Seq(a, b) => Ok(nonempty(doc, a, env)? || nonempty(doc, b, env)?),
        Query::Var(_) => Ok(true),
        Query::Step(base, axis, nt) => {
            let Query::Var(v) = &**base else {
                return Err(CfError::NotCompositionFree);
            };
            let id = lookup(env, v)?;
            Ok(!doc.axis(id, *axis, nt).is_empty())
        }
        Query::For(x, source, body) => {
            let Query::Step(base, axis, nt) = &**source else {
                return Err(CfError::NotCompositionFree);
            };
            let Query::Var(v) = &**base else {
                return Err(CfError::NotCompositionFree);
            };
            let id = lookup(env, v)?;
            for n in doc.axis(id, *axis, nt) {
                env.push((x.clone(), n));
                let r = nonempty(doc, body, env);
                env.pop();
                if r? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Query::If(c, body) => Ok(guess_cond(doc, c, env)? && nonempty(doc, body, env)?),
        Query::Let(_, _, _) => Err(CfError::NotCompositionFree),
    }
}

fn guess_cond(doc: &ArenaDoc, c: &Cond, env: &mut Vec<(Var, NodeId)>) -> Result<bool, CfError> {
    match c {
        Cond::True => Ok(true),
        Cond::VarEq(x, y, mode) => {
            let a = lookup(env, x)?;
            let b = lookup(env, y)?;
            Ok(match mode {
                EqMode::Deep => doc.deep_eq(a, b),
                _ => doc.label_id(a) == doc.label_id(b),
            })
        }
        Cond::ConstEq(x, a, mode) => {
            let n = lookup(env, x)?;
            Ok(match mode {
                EqMode::Deep => label_is(doc, n, a.as_str()) && doc.is_leaf(n),
                _ => label_is(doc, n, a.as_str()),
            })
        }
        Cond::Some(x, source, sat) => {
            let Query::Step(base, axis, nt) = &**source else {
                return Err(CfError::NotCompositionFree);
            };
            let Query::Var(v) = &**base else {
                return Err(CfError::NotCompositionFree);
            };
            let id = lookup(env, v)?;
            for n in doc.axis(id, *axis, nt) {
                env.push((x.clone(), n));
                let r = guess_cond(doc, sat, env);
                env.pop();
                if r? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Cond::And(a, b) => Ok(guess_cond(doc, a, env)? && guess_cond(doc, b, env)?),
        Cond::Or(a, b) => Ok(guess_cond(doc, a, env)? || guess_cond(doc, b, env)?),
        // Negation over guess-free conditions (atomic equalities and their
        // Boolean combinations) is deterministic given the bindings — the
        // Prop 7.7 query's `not $xi = $xj` disequalities fall here, as in
        // the classical conjunctive-query-with-≠ reading. Negation over
        // quantified conditions would need co-nondeterminism: rejected.
        Cond::Not(inner) => {
            if cond_is_guess_free(inner) {
                Ok(!guess_cond(doc, inner, env)?)
            } else {
                Err(CfError::NegationPresent)
            }
        }
        Cond::Every(v, s, sat) => {
            if !cond_is_guess_free(sat) {
                return Err(CfError::NegationPresent);
            }
            let Query::Step(base, axis, nt) = &**s else {
                return Err(CfError::NotCompositionFree);
            };
            let Query::Var(sv) = &**base else {
                return Err(CfError::NotCompositionFree);
            };
            let id = lookup(env, sv)?;
            for n in doc.axis(id, *axis, nt) {
                env.push((v.clone(), n));
                let r = guess_cond(doc, sat, env);
                env.pop();
                if !r? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Cond::Query(_) => Err(CfError::NotCompositionFree),
    }
}

/// A condition is guess-free when it quantifies over nothing: its value is
/// determined by the current bindings alone.
fn cond_is_guess_free(c: &Cond) -> bool {
    match c {
        Cond::VarEq(_, _, _) | Cond::ConstEq(_, _, _) | Cond::True => true,
        Cond::And(a, b) | Cond::Or(a, b) => cond_is_guess_free(a) && cond_is_guess_free(b),
        Cond::Not(a) => cond_is_guess_free(a),
        Cond::Some(_, _, _) | Cond::Every(_, _, _) | Cond::Query(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_xtree::parse_tree;
    use xq_core::{boolean_result, parse_query};

    fn doc(src: &str) -> Tree {
        parse_tree(src).unwrap()
    }

    fn nested_loop_tokens(q: &Query, t: &Tree) -> Vec<Token> {
        let d = ArenaDoc::from_tree(t);
        let mut e = NestedLoopEngine::new(&d);
        let mut out = Vec::new();
        e.eval(q, &mut out).unwrap();
        out
    }

    #[test]
    fn nested_loop_agrees_with_reference_semantics() {
        let t = doc("<r><a><b/><c/></a><a><b/></a><d/></r>");
        for src in [
            "<out>{ for $x in $root/a return <w>{ $x/b }</w> }</out>",
            "<out>{ for $x in $root/* return if ($x =atomic <d/>) then $x }</out>",
            "<out>{ for $x in $root//b return $x }</out>",
            "<out>{ for $x in $root/a return \
               if (some $y in $x/b satisfies true) then $x }</out>",
            "<out>{ for $x in $root/a return for $y in $root/a return \
               if ($x = $y) then <same/> }</out>",
            "<out>{ if (not(some $y in $root/zzz satisfies true)) then <none/> }</out>",
            "()",
            "$root/d",
        ] {
            let q = parse_query(src).unwrap();
            let got = nested_loop_tokens(&q, &t);
            let want: Vec<Token> = xq_core::eval_query(&q, &t)
                .unwrap()
                .iter()
                .flat_map(|tr| tr.tokens())
                .collect();
            assert_eq!(got, want, "query {src}");
        }
    }

    #[test]
    fn space_stays_linear_in_query_depth() {
        // Prop 7.3: live bindings ≤ #variables + 1, independent of |t|.
        let q = parse_query(
            "<out>{ for $a in $root/* return for $b in $a/* return \
             for $c in $b/* return <hit/> }</out>",
        )
        .unwrap();
        for size in [10usize, 100, 1000] {
            let mut g = cv_xtree::TreeGen::new(size as u64);
            let t = cv_xtree::random_tree(&mut g, size, &["a", "b"]);
            let d = ArenaDoc::from_tree(&t);
            let mut e = NestedLoopEngine::new(&d);
            let mut out = Vec::new();
            e.eval(&q, &mut out).unwrap();
            assert!(
                e.stats().max_live_bindings <= 4,
                "bindings {} at size {size}",
                e.stats().max_live_bindings
            );
        }
    }

    #[test]
    fn rejects_composition() {
        let q = parse_query("for $y in <a><b/></a> return $y/b").unwrap();
        let t = doc("<r/>");
        let d = ArenaDoc::from_tree(&t);
        let mut e = NestedLoopEngine::new(&d);
        assert_eq!(
            e.eval(&q, &mut Vec::new()),
            Err(CfError::NotCompositionFree)
        );
        assert_eq!(witness_boolean(&q, &t), Err(CfError::NotCompositionFree));
    }

    #[test]
    fn witness_search_agrees_on_positive_queries() {
        let t = doc("<r><a><b/></a><a><c/></a></r>");
        for src in [
            "<out>{ for $x in $root/a return $x/b }</out>",
            "<out>{ for $x in $root/a return $x/z }</out>",
            "<out>{ if (some $x in $root/a satisfies some $y in $x/c \
               satisfies true) then <y/> }</out>",
            "<out>{ for $x in $root/a return for $y in $root/a return \
               if ($x = $y) then <e/> }</out>",
            "<out>{ () }</out>",
            "<out><always/></out>",
        ] {
            let q = parse_query(src).unwrap();
            let want = boolean_result(&q, &t).unwrap();
            assert_eq!(witness_boolean(&q, &t).unwrap(), want, "query {src}");
        }
    }

    #[test]
    fn witness_search_handles_guess_free_negation_only() {
        // Atomic disequality (the Prop 7.7 pattern) is fine.
        let q = parse_query(
            "<out>{ for $x in $root/* return for $y in $root/* return \
             if (not($x =atomic $y)) then <ne/> }</out>",
        )
        .unwrap();
        let t = doc("<r><a/><b/></r>");
        assert_eq!(witness_boolean(&q, &t), Ok(true));
        // Negation over a quantified condition is rejected.
        let q =
            parse_query("<out>{ if (not(some $x in $root/* satisfies true)) then <none/> }</out>")
                .unwrap();
        assert_eq!(witness_boolean(&q, &t), Err(CfError::NegationPresent));
    }

    #[test]
    fn boolean_convention() {
        let t = doc("<r><a/></r>");
        let d = ArenaDoc::from_tree(&t);
        let mut e = NestedLoopEngine::new(&d);
        let yes = parse_query("<out>{ $root/a }</out>").unwrap();
        let no = parse_query("<out>{ $root/z }</out>").unwrap();
        assert!(e.boolean(&yes).unwrap());
        assert!(!e.boolean(&no).unwrap());
    }

    #[test]
    fn budget_guard() {
        let q = parse_query(
            "<out>{ for $a in $root//* return for $b in $root//* return \
             for $c in $root//* return <t/> }</out>",
        )
        .unwrap();
        let mut g = cv_xtree::TreeGen::new(1);
        let t = cv_xtree::random_tree(&mut g, 200, &["a"]);
        let d = ArenaDoc::from_tree(&t);
        let mut e = NestedLoopEngine::new(&d).with_max_steps(10_000);
        assert_eq!(e.eval(&q, &mut Vec::new()), Err(CfError::Budget));
    }
}
