//! Umbrella crate for the Koch (PODS 2005) reproduction workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can use a
//! single dependency. See the repository `README.md` for an overview and
//! `DESIGN.md` for the system inventory.

pub use cv_monad as monad;
pub use cv_value as value;
pub use cv_xtree as xtree;
pub use xq_compfree as compfree;
pub use xq_core as core;
pub use xq_fom as fom;
pub use xq_logicprog as logicprog;
pub use xq_paths as paths;
pub use xq_reductions as reductions;
pub use xq_relalg as relalg;
pub use xq_rewrite as rewrite;
pub use xq_server as server;
pub use xq_stream as stream;
