//! The load-shedding contract, tested with live sockets:
//!
//! * **Bounded queue, exact shedding** — with every worker pinned on an
//!   effectively infinite query and the admission queue filled to its
//!   high-water mark, the queue gauge reads exactly the capacity, and
//!   `N` further probes draw exactly `N` `overloaded` responses (no
//!   false sheds before the mark, no admissions past it). Cancelling
//!   the pinned queries drains the queue and every queued request gets
//!   its real answer.
//! * **Zero lost or duplicated responses** — a swarm of pipelining
//!   clients each fires a burst of ids and must read back exactly its
//!   own ids, in order, each exactly once, while the per-connection
//!   eval thread batches greedily underneath.
//!
//! Everything is driven through the public wire protocol plus the two
//! gauges (`queue_depth`, `in_flight`) the server exposes for exactly
//! this purpose; timing only ever *waits* for a state, never assumes
//! one, so the test is schedule-independent.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cv_xtree::{parse_tree, ArenaDoc};
use xq_core::{Budget, Threads};
use xq_server::{Frame, Server, ServerConfig};

fn docs() -> HashMap<String, Arc<ArenaDoc>> {
    let tree = parse_tree("<r><a/><b><k/></b><k/></r>").unwrap();
    let mut docs = HashMap::new();
    docs.insert("d0".to_string(), Arc::new(ArenaDoc::from_tree(&tree)));
    docs
}

/// A query whose full run is ~3^20 loop iterations: never finishes
/// inside a test, aborts within one tick of its cancel flag.
fn infinite_query() -> String {
    (1..=20)
        .map(|i| format!("for $v{i} in $root//* return "))
        .collect::<String>()
        + "<t/>"
}

fn unlimited() -> Budget {
    Budget {
        max_steps: u64::MAX,
        max_items: u64::MAX,
        threads: Threads::One,
        ..Budget::default()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Frame {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        Frame::parse(line.trim_end_matches('\n')).expect("server frames parse")
    }

    fn query(&mut self, id: u64, text: &str) {
        let frame = Frame::new()
            .str("op", "query")
            .uint("id", id)
            .str("doc", "d0")
            .str("query", text);
        self.send(&frame.encode());
    }
}

/// Spins until `probe` returns true (schedule-independent waiting).
fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn queue_is_bounded_and_sheds_exactly_past_the_high_water_mark() {
    const WORKERS: usize = 2;
    const CAPACITY: usize = 3;
    const PROBES: usize = 5;
    let mut tenants = HashMap::new();
    tenants.insert("slow".to_string(), unlimited());
    let server = Server::start(ServerConfig {
        workers: WORKERS,
        queue_capacity: CAPACITY,
        tenants,
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();

    // Pin every worker on an infinite query — one connection each, so
    // each reaches the pool immediately rather than batching behind a
    // sibling.
    let inf = infinite_query();
    let mut pinned: Vec<Client> = (0..WORKERS)
        .map(|i| {
            let mut c = Client::connect(&server);
            c.send(r#"{"op":"hello","tenant":"slow"}"#);
            assert_eq!(c.recv().get_bool("ok"), Some(true));
            c.query(i as u64, &inf);
            c
        })
        .collect();
    wait_for("all workers pinned", || server.in_flight() == WORKERS);

    // Fill the queue to exactly its high-water mark: one connection
    // per slot (a single pipelined connection would hold the overflow
    // in its own channel, not the pool queue — this test wants the
    // pool queue itself at the mark).
    let mut fillers: Vec<Client> = (0..CAPACITY)
        .map(|i| {
            let mut c = Client::connect(&server);
            c.send(r#"{"op":"hello","tenant":"slow"}"#);
            assert_eq!(c.recv().get_bool("ok"), Some(true));
            c.query(100 + i as u64, &inf);
            c
        })
        .collect();
    wait_for("queue filled to capacity", || {
        server.queue_depth() == CAPACITY
    });

    // Probes past the mark: exactly N overloaded responses, in order,
    // and the queue gauge never grew.
    let mut prober = Client::connect(&server);
    for id in 0..PROBES {
        prober.query(200 + id as u64, "$root/*");
    }
    for id in 0..PROBES {
        let resp = prober.recv();
        assert_eq!(resp.get_uint("id"), Some(200 + id as u64), "probe order");
        assert_eq!(resp.get_str("code"), Some("overloaded"), "probe {id}");
    }
    assert_eq!(server.stats().shed.load(Ordering::Relaxed), PROBES as u64);
    assert_eq!(
        server.queue_depth(),
        CAPACITY,
        "shed requests must never enter the queue"
    );

    // Release the workers: cancel the pinned queries. Ack precedes the
    // cancelled response deterministically (the reader writes the ack
    // before tripping the flag).
    for (i, c) in pinned.iter_mut().enumerate() {
        let cancel = Frame::new().str("op", "cancel").uint("id", i as u64);
        c.send(&cancel.encode());
        let ack = c.recv();
        assert_eq!(ack.get_str("op"), Some("cancel"));
        let done = c.recv();
        assert_eq!(done.get_str("code"), Some("cancelled"));
    }
    // Workers now free: the queued requests drain into evaluation (they
    // were never lost while queued). Cancel every filler *before*
    // reading any final response — the pool drains the queue in an
    // order the scheduler picks, so reading filler 0's answer first
    // could block behind a not-yet-cancelled sibling hogging a worker.
    // Tripping all three flags up front makes the drain order
    // irrelevant: an in-flight filler aborts at its next tick, a
    // still-queued one is rejected by preflight the moment a worker
    // picks it up. Either way each id gets exactly one ack and one
    // `cancelled` response, nothing duplicated.
    for (i, c) in fillers.iter_mut().enumerate() {
        let cancel = Frame::new().str("op", "cancel").uint("id", 100 + i as u64);
        c.send(&cancel.encode());
        let ack = c.recv();
        assert_eq!(ack.get_str("op"), Some("cancel"), "filler {i} ack");
    }
    for (i, c) in fillers.iter_mut().enumerate() {
        let done = c.recv();
        assert_eq!(done.get_uint("id"), Some(100 + i as u64), "filler {i} id");
        assert_eq!(done.get_str("code"), Some("cancelled"), "filler {i}");
    }
    wait_for("queue drained", || server.queue_depth() == 0);
    wait_for("workers idle", || server.in_flight() == 0);
}

#[test]
fn swarm_loses_and_duplicates_nothing_under_batching() {
    const CLIENTS: usize = 8;
    const BURST: usize = 24;
    let server = Server::start(ServerConfig {
        workers: 2,
        batch_max: 8,
        docs: docs(),
        ..ServerConfig::default()
    })
    .unwrap();
    let server = &server;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(server);
                // Pipeline the whole burst before reading anything: the
                // connection's eval thread batches greedily underneath.
                for id in 0..BURST {
                    let q = match (c + id) % 3 {
                        0 => "$root/*",
                        1 => "<out>{ $root//k }</out>",
                        _ => "$nope",
                    };
                    client.query((c * BURST + id) as u64, q);
                }
                for id in 0..BURST {
                    let resp = client.recv();
                    // Exactly this client's ids, in exactly this order.
                    assert_eq!(
                        resp.get_uint("id"),
                        Some((c * BURST + id) as u64),
                        "client {c} response order"
                    );
                    let ok = matches!((c + id) % 3, 0 | 1);
                    assert_eq!(resp.get_bool("ok"), Some(ok), "client {c} id {id}");
                    if ok {
                        assert!(resp.get_str("result").is_some());
                    } else {
                        assert_eq!(resp.get_str("code"), Some("eval"));
                    }
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(
        stats.served.load(Ordering::Relaxed) as usize,
        CLIENTS * BURST * 2 / 3,
        "every ok query answered exactly once"
    );
    assert_eq!(stats.shed.load(Ordering::Relaxed), 0, "no false sheds");
    wait_for("all work drained", || {
        server.queue_depth() == 0 && server.in_flight() == 0
    });
}
