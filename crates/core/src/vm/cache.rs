//! The process-wide plan store.
//!
//! Hot queries compile once: [`PlanCache::get_or_compile`] keys
//! [`CompiledPlan`]s by query text, sharded 16 ways by an FNV-1a hash of
//! the text (the same striping discipline as the global label interner,
//! for the same reason — service workers hit the cache concurrently and
//! must not serialize on one lock). Reads take a shard read lock;
//! a miss upgrades to the shard write lock and compiles **inside** it,
//! re-checking first, so each text is compiled exactly once per process
//! no matter how many workers race on it — each entry carries a compile
//! counter precisely so a duplicated compilation would be *observable*
//! (the `plan_cache_threads` suite asserts the counter stays at 1).
//!
//! Parse errors are not cached: a malformed query costs a parse per
//! attempt, exactly as it did before the cache existed. Each shard holds
//! at most `SHARD_CAP` plans; at capacity the shard clears (the
//! document-cache eviction idiom — workloads cycle few distinct hot
//! queries).

use super::compile::{compile_query_text, CompiledPlan};
use crate::parser::QueryParseError;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// Number of lock stripes. Power of two so the hash folds cheaply.
const SHARDS: usize = 16;

/// Plans per shard before the shard clears.
const SHARD_CAP: usize = 512;

struct Entry {
    plan: Arc<CompiledPlan>,
    /// Times this key was compiled while cached — 1 unless the
    /// exactly-once discipline is broken (asserted in tests).
    compiles: u64,
}

/// A sharded map from query text to compiled plan. One process-wide
/// instance serves every evaluation path ([`PlanCache::global`]); tests
/// build private instances with [`PlanCache::new`].
#[derive(Default)]
pub struct PlanCache {
    shards: Vec<RwLock<HashMap<Arc<str>, Entry>>>,
}

/// FNV-1a, matching the label interner's shard router.
fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// The process-wide cache every evaluation path shares.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(PlanCache::new)
    }

    fn shard(&self, text: &str) -> &RwLock<HashMap<Arc<str>, Entry>> {
        &self.shards[(fnv1a(text) as usize) & (SHARDS - 1)]
    }

    /// The cached plan for `text`, if present (never compiles).
    ///
    /// Lock poisoning is recovered, not propagated, here and in every
    /// accessor below: the only write under a shard lock is
    /// insert-after-compile ([`PlanCache::get_or_compile`]), so a panic
    /// mid-critical-section at worst loses the entry being inserted —
    /// the surviving map is consistent, and the serving pool's panic
    /// containment depends on the cache staying usable after a contained
    /// crash.
    pub fn get(&self, text: &str) -> Option<Arc<CompiledPlan>> {
        self.shard(text)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(text)
            .map(|e| e.plan.clone())
    }

    /// The cached plan for `text`, compiling it on a miss. Hits return
    /// the same `Arc` (pointer equality — property-tested); misses
    /// compile under the shard write lock after a re-check, so concurrent
    /// misses on one text compile it once. Parse failures propagate and
    /// are not cached.
    pub fn get_or_compile(&self, text: &str) -> Result<Arc<CompiledPlan>, QueryParseError> {
        if let Some(plan) = self.get(text) {
            return Ok(plan);
        }
        let mut shard = self
            .shard(text)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = shard.get(text) {
            return Ok(e.plan.clone());
        }
        let plan = Arc::new(compile_query_text(text)?);
        if shard.len() >= SHARD_CAP {
            shard.clear();
        }
        shard.insert(
            Arc::from(text),
            Entry {
                plan: plan.clone(),
                compiles: 1,
            },
        );
        Ok(plan)
    }

    /// How many times `text` was compiled while cached (0 when absent,
    /// 1 under the exactly-once guarantee) — the compile-count hook the
    /// concurrency smoke test observes.
    pub fn compile_count(&self, text: &str) -> u64 {
        self.shard(text)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(text)
            .map_or(0, |e| e.compiles)
    }

    /// Number of cached plans across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True iff no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_return_the_same_arc() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile("$root/*").unwrap();
        let b = cache.get_or_compile("$root/*").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.compile_count("$root/*"), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn parse_errors_propagate_and_are_not_cached() {
        let cache = PlanCache::new();
        assert!(cache.get_or_compile("for $x in").is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.compile_count("for $x in"), 0);
    }

    #[test]
    fn distinct_texts_get_distinct_plans() {
        let cache = PlanCache::new();
        let a = cache.get_or_compile("$root/a").unwrap();
        let b = cache.get_or_compile("$root/b").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_overflow_clears_the_shard_not_the_cache() {
        let cache = PlanCache::new();
        // Overfill: SHARD_CAP plans land in ~16 shards, so pushing well
        // past SHARDS * SHARD_CAP forces at least one clear without the
        // cache growing unboundedly.
        let n = SHARDS * SHARD_CAP + SHARD_CAP;
        for i in 0..n {
            cache.get_or_compile(&format!("$root/t{i}")).unwrap();
        }
        assert!(cache.len() <= SHARDS * SHARD_CAP);
        assert!(!cache.is_empty());
    }
}
