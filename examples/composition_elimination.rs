//! The §7.2 story: composition-free queries capture full Core XQuery with
//! atomic equality (Theorem 7.9), at an exponential price in query size.
//! Reproduces the Figure 10 rewriting and sweeps the succinctness family.

use xq_complexity::core::{is_composition_free, is_xq_tilde, parse_query, to_composition_free};
use xq_complexity::rewrite::eliminate_composition;

fn main() {
    // Figure 10: the paper's let-example normalizes to a one-liner.
    let q = parse_query(
        "let $x := <a>{ for $w in $root/* return <b>{$w}</b> }</a> \
         return for $y in $x/b return $y/*",
    )
    .unwrap();
    println!("before: {q}");
    let (rewritten, trace) = eliminate_composition(&q, 1_000_000).unwrap();
    println!("after:  {rewritten}");
    println!("rules applied: {:?}", trace.rules());
    assert!(is_xq_tilde(&rewritten));

    // The XQ∼ result converts further into the XQ⁻ condition syntax
    // (Prop 7.1).
    let minus = to_composition_free(&rewritten);
    println!("as XQ⁻: {minus}");
    assert!(is_composition_free(&minus));

    // The succinctness gap: each extra let doubles the rewritten size.
    println!("\nlet-chain blowup (Theorem 7.9's succinctness):");
    println!("depth  |Q|  |rewritten|");
    for depth in 1..=7usize {
        let mut binds = String::from("let $x0 := <a>{ $root/* }</a> return ");
        for i in 1..=depth {
            binds += &format!(
                "let $x{i} := <a>{{ $x{p}/* , $x{p}/* }}</a> return ",
                p = i - 1
            );
        }
        let q = parse_query(&format!("<out>{{ {binds} $x{depth}/* }}</out>")).unwrap();
        let (out, _) = eliminate_composition(&q, 100_000_000).unwrap();
        println!("{depth:>5}  {:>3}  {:>10}", q.size(), out.size());
    }
}
