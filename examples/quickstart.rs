//! Quickstart: parse an XML document and a Core XQuery, evaluate it with
//! the reference (Figure 1) semantics, and inspect the fragments it
//! belongs to.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xq_complexity::core::{eval_query, is_composition_free, parse_query, Features};
use xq_complexity::xtree::parse_tree;

fn main() {
    let doc = parse_tree(
        "<bib>\
           <book><year><y2004/></year><title><t1/></title></book>\
           <book><year><y1999/></year><title><t2/></title></book>\
         </bib>",
    )
    .expect("well-formed XML");

    // Books from 2004 — the paper's flagship example, §1.
    let query = parse_query(
        r#"<books_2004>
           { for $x in $root/book
             where some $y in $x/year satisfies
                   some $u in $y/y2004 satisfies true
             return <book>{ $x/title }</book> }
           </books_2004>"#,
    )
    .expect("well-formed query");

    let result = eval_query(&query, &doc).expect("evaluation succeeds");
    println!("query:\n{query}\n");
    println!("result:");
    for tree in &result {
        println!("  {}", tree.to_xml());
    }

    // Fragment analysis (§7): this query is composition-free, which is
    // why it evaluates in PSPACE (Prop 7.3) rather than needing the
    // doubly exponential worst case.
    println!("\ncomposition-free (XQ⁻): {}", is_composition_free(&query));
    let f = Features::of(&query);
    println!("axes used: {:?}", f.axes);
    println!("uses negation: {}", f.uses_not);
}
