//! Differential testing across all five XQuery engines: the Figure 1
//! reference semantics, the streaming evaluator (Thm 4.5), the
//! composition-free nested-loop engine (Prop 7.3), the witness-search
//! engine (Prop 7.6), and the positional string semantics (Remark 6.7) —
//! plus the Fig 2 monad-algebra translation evaluated on encoded inputs.

use xq_complexity::core::{self as core, parse_query, DocRepr};
use xq_complexity::xtree::{random_tree, ArenaDoc, Token, Tree, TreeGen};

fn reference_tokens(q: &core::Query, t: &Tree) -> Vec<Token> {
    core::eval_query(q, t)
        .unwrap()
        .iter()
        .flat_map(Tree::tokens)
        .collect()
}

const COMPOSITION_FREE: &[&str] = &[
    "<out>{ for $x in $root/a return <w>{ $x/b }</w> }</out>",
    "<out>{ for $x in $root//b return ($x, $x) }</out>",
    "<out>{ for $x in $root/* return \
       if (some $y in $x/b satisfies $y =atomic <b/>) then $x }</out>",
    "<out>{ for $x in $root/a return for $y in $root/a return \
       if ($x = $y) then <eq/> }</out>",
    "<out>{ if (every $x in $root/a satisfies some $y in $x/* \
       satisfies true) then <nonleaf/> }</out>",
];

const COMPOSITIONAL: &[&str] = &[
    "for $y in (for $w in $root/a return <b>{$w}</b>) return $y/*",
    "(<w>{ $root/a }</w>)/a",
    "let $x := <k><a/><b/></k> return ($x/a, $x/b)",
];

/// The shared document fleet. Loading honours `XQ_ARENA` (see
/// `xq_core::doc`): with it set, every document — parsed or generated —
/// is routed through the arena store, re-running all the agreement suites
/// below against that representation.
fn fleet_docs() -> Vec<Tree> {
    let repr = DocRepr::from_env();
    let mut docs = vec![
        core::load_document("<r><a><b/></a><a><c/></a><b/></r>").unwrap(),
        core::load_document("<r/>").unwrap(),
        core::load_document("<r><a><b/><b/></a></r>").unwrap(),
    ];
    for seed in 0..4u64 {
        let mut g = TreeGen::new(seed);
        docs.push(repr.roundtrip(&random_tree(&mut g, 15, &["a", "b", "c"])));
    }
    docs
}

#[test]
fn streaming_agrees_with_reference() {
    for doc in fleet_docs() {
        for src in COMPOSITION_FREE.iter().chain(COMPOSITIONAL) {
            let q = parse_query(src).unwrap();
            let (got, _) = xq_complexity::stream::stream_query(&q, &doc, 50_000_000)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(got, reference_tokens(&q, &doc), "query {src} on {doc}");
        }
    }
}

#[test]
fn nested_loop_agrees_with_reference() {
    for doc in fleet_docs() {
        let d = ArenaDoc::from_tree(&doc);
        for src in COMPOSITION_FREE {
            let q = parse_query(src).unwrap();
            let mut engine = xq_complexity::compfree::NestedLoopEngine::new(&d);
            let mut got = Vec::new();
            engine.eval(&q, &mut got).unwrap();
            assert_eq!(got, reference_tokens(&q, &doc), "query {src} on {doc}");
        }
    }
}

#[test]
fn witness_search_agrees_on_booleans() {
    for doc in fleet_docs() {
        for src in COMPOSITION_FREE {
            let q = parse_query(src).unwrap();
            match xq_complexity::compfree::witness_boolean(&q, &doc) {
                Ok(got) => {
                    let want = core::boolean_result(&q, &doc).unwrap();
                    assert_eq!(got, want, "query {src} on {doc}");
                }
                // Queries needing co-nondeterminism are out of scope.
                Err(xq_complexity::compfree::CfError::NegationPresent) => {}
                Err(e) => panic!("{src}: {e}"),
            }
        }
    }
}

#[test]
fn positional_agrees_with_reference() {
    // Positional evaluation is deliberately naive — small docs only.
    let docs = [
        core::load_document("<r><a><b/></a><a><c/></a></r>").unwrap(),
        core::load_document("<r/>").unwrap(),
    ];
    for doc in docs {
        for src in COMPOSITION_FREE.iter().chain(COMPOSITIONAL) {
            let q = parse_query(src).unwrap();
            let got = xq_complexity::fom::eval_positional(&q, &doc, 100_000_000)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(got, reference_tokens(&q, &doc), "query {src} on {doc}");
        }
    }
}

#[test]
fn ma_translation_agrees_with_reference() {
    // Lemma 3.2 on the fleet (child/descendant/self axes).
    for doc in fleet_docs() {
        for src in COMPOSITION_FREE {
            let q = parse_query(src).unwrap();
            assert!(
                core::ma_invariant_holds(&q, &doc).unwrap(),
                "Lemma 3.2 failed for {src} on {doc}"
            );
        }
    }
}

#[test]
fn rewriter_preserves_semantics_on_compositional_queries() {
    for doc in fleet_docs() {
        for src in COMPOSITIONAL {
            let q = parse_query(src).unwrap();
            let (out, _) = xq_complexity::rewrite::eliminate_composition(&q, 10_000_000).unwrap();
            assert!(xq_complexity::core::is_xq_tilde(&out), "{out}");
            assert_eq!(
                core::eval_query(&out, &doc).unwrap(),
                core::eval_query(&q, &doc).unwrap(),
                "query {src} on {doc}"
            );
        }
    }
}
