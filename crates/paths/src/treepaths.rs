//! The §5.1 flat path-set encoding of *data trees*.
//!
//! [`value_paths`](crate::value_paths) views a complex value as the set of
//! its root-to-leaf label paths; the same flattening applies to the XML
//! data model: an unranked ordered labeled tree is the set of its
//! root-to-leaf paths, where each step contributes a 1-based child-index
//! segment (set/list members get index labels in `value_paths`, children
//! get sibling positions here) followed by the node's label segment. Inner
//! labels appear on every path through them, so the path set determines
//! the tree: [`tree_paths`] and [`doc_paths`] are injective and agree with
//! each other.
//!
//! Two implementations are provided deliberately: [`tree_paths`] recurses
//! over the `Rc` [`Tree`], while [`doc_paths`] takes the arena route — a
//! single preorder pass over the [`ArenaDoc`] parallel vectors that
//! maintains one running prefix and never clones a subtree. They are
//! differentially tested equal, which is their point: each is an
//! independent oracle for the other. On time the two are a wash (~1× in
//! the T15 harness row) — building the `Term` path set dominates, not the
//! traversal — so reach for `doc_paths` to avoid a tree materialization,
//! not for speed.

use crate::{PathSet, Term};
use cv_xtree::{ArenaDoc, NodeId, Tree};

/// Encodes a tree as the set of its root-to-leaf paths, `value_paths`
/// style: `root-label (. child-index . label)* `.
pub fn tree_paths(t: &Tree) -> PathSet {
    let mut out = PathSet::new();
    let mut prefix = vec![Term::sym(t.label().as_str())];
    collect(t, &mut prefix, &mut out);
    out
}

fn collect(t: &Tree, prefix: &mut Vec<Term>, out: &mut PathSet) {
    if t.is_leaf() {
        out.insert(Term::from_segments(prefix.clone()));
        return;
    }
    for (i, c) in t.children().iter().enumerate() {
        prefix.push(Term::sym((i + 1).to_string()));
        prefix.push(Term::sym(c.label().as_str()));
        collect(c, prefix, out);
        prefix.pop();
        prefix.pop();
    }
}

/// [`tree_paths`] over the arena store: same output, computed by one
/// stack-driven preorder walk over the id-indexed vectors.
pub fn doc_paths(doc: &ArenaDoc) -> PathSet {
    let mut out = PathSet::new();
    let root = doc.root();
    let mut prefix = vec![Term::sym(doc.label(root).as_str())];
    // (node, child index within its parent) to visit, plus pop markers.
    enum Ev {
        Visit(NodeId, usize),
        Pop,
    }
    let mut stack: Vec<Ev> = Vec::new();
    let push_children = |stack: &mut Vec<Ev>, v: NodeId| {
        for (i, &c) in doc.children(v).iter().enumerate().rev() {
            stack.push(Ev::Visit(c, i + 1));
        }
    };
    if doc.is_leaf(root) {
        out.insert(Term::from_segments(prefix.clone()));
        return out;
    }
    push_children(&mut stack, root);
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Visit(v, i) => {
                prefix.push(Term::sym(i.to_string()));
                prefix.push(Term::sym(doc.label(v).as_str()));
                if doc.is_leaf(v) {
                    out.insert(Term::from_segments(prefix.clone()));
                    prefix.pop();
                    prefix.pop();
                } else {
                    stack.push(Ev::Pop);
                    push_children(&mut stack, v);
                }
            }
            Ev::Pop => {
                prefix.pop();
                prefix.pop();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_xtree::{parse_tree, random_tree, DoublingFamily, TreeGen};

    fn ps(paths: &[&str]) -> PathSet {
        paths
            .iter()
            .map(|p| crate::parse_term(p).unwrap())
            .collect()
    }

    #[test]
    fn paths_of_the_remark_6_7_document() {
        // <c><d/><a/><a><c/></a></c>
        let t = parse_tree("<c><d/><a/><a><c/></a></c>").unwrap();
        assert_eq!(tree_paths(&t), ps(&["c.1.d", "c.2.a", "c.3.a.1.c"]));
    }

    #[test]
    fn leaf_document_is_a_single_segment() {
        let t = parse_tree("<r/>").unwrap();
        assert_eq!(tree_paths(&t), ps(&["r"]));
        assert_eq!(doc_paths(&ArenaDoc::from_tree(&t)), ps(&["r"]));
    }

    #[test]
    fn encoding_distinguishes_sibling_order() {
        let ab = parse_tree("<r><a/><b/></r>").unwrap();
        let ba = parse_tree("<r><b/><a/></r>").unwrap();
        assert_ne!(tree_paths(&ab), tree_paths(&ba));
    }

    #[test]
    fn arena_fast_path_agrees_with_tree_recursion() {
        for seed in 0..6u64 {
            let mut g = TreeGen::new(seed);
            let t = random_tree(&mut g, 40, &["a", "b", "c"]);
            assert_eq!(
                doc_paths(&ArenaDoc::from_tree(&t)),
                tree_paths(&t),
                "seed {seed}"
            );
        }
        for family in DoublingFamily::ALL {
            let n = 5;
            assert_eq!(
                doc_paths(&family.arena(n)),
                tree_paths(&family.tree(n)),
                "{family} n={n}"
            );
        }
    }
}
