//! Parsing XML tag strings into trees.
//!
//! The dialect is exactly the paper's: opening tags `<a>`, closing tags
//! `</a>`, and the self-closing abbreviation `<a/>`. No attributes, no text
//! content (whitespace between tags is ignored), no processing instructions.

use crate::{Token, Tree};

/// An XML parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Offset of the failure. For text parsing this is a byte offset; for
    /// token-stream rebuilding it is a token index.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, XmlError> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let mut out = Vec::new();
    let err = |pos: usize, m: &str| XmlError {
        offset: pos,
        message: m.to_string(),
    };
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        if c.is_whitespace() {
            pos += 1;
            continue;
        }
        if c != '<' {
            return Err(err(pos, "expected '<' (text content is not supported)"));
        }
        pos += 1;
        let closing = pos < bytes.len() && bytes[pos] == b'/';
        if closing {
            pos += 1;
        }
        let start = pos;
        while pos < bytes.len() {
            let c = bytes[pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '#' {
                pos += 1;
            } else {
                break;
            }
        }
        if pos == start {
            return Err(err(pos, "expected a tag name"));
        }
        let name = &src[start..pos];
        let self_closing = !closing && pos < bytes.len() && bytes[pos] == b'/';
        if self_closing {
            pos += 1;
        }
        if pos >= bytes.len() || bytes[pos] != b'>' {
            return Err(err(pos, "expected '>'"));
        }
        pos += 1;
        if closing {
            out.push(Token::Close(name.into()));
        } else {
            out.push(Token::Open(name.into()));
            if self_closing {
                out.push(Token::Close(name.into()));
            }
        }
    }
    Ok(out)
}

/// Parses an XML document string into a forest of trees.
pub fn parse_forest(src: &str) -> Result<Vec<Tree>, XmlError> {
    let tokens = tokenize(src)?;
    Tree::forest_from_tokens(&tokens)
}

/// Parses an XML document string containing exactly one tree.
pub fn parse_tree(src: &str) -> Result<Tree, XmlError> {
    let mut forest = parse_forest(src)?;
    match forest.len() {
        1 => Ok(forest.pop().expect("length checked")),
        n => Err(XmlError {
            offset: 0,
            message: format!("expected exactly one root element, found {n}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let t = parse_tree("<bib><book><year/></book><book/></bib>").unwrap();
        assert_eq!(t.label().as_str(), "bib");
        assert_eq!(t.children().len(), 2);
        assert_eq!(t.children()[0].children()[0].label().as_str(), "year");
    }

    #[test]
    fn self_closing_equals_empty_pair() {
        assert_eq!(parse_tree("<a/>").unwrap(), parse_tree("<a></a>").unwrap());
    }

    #[test]
    fn whitespace_between_tags_is_ignored() {
        let t = parse_tree("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(t.children().len(), 2);
    }

    #[test]
    fn round_trips_through_to_xml() {
        let src = "<c><d/><a/><a><c/></a></c>";
        let t = parse_tree(src).unwrap();
        assert_eq!(t.to_xml(), src);
        assert_eq!(parse_tree(&t.to_xml()).unwrap(), t);
    }

    #[test]
    fn forest_parsing() {
        let f = parse_forest("<a/><b/><c><d/></c>").unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(parse_forest("").unwrap(), vec![]);
    }

    #[test]
    fn rejects_ill_formed_documents() {
        assert!(parse_tree("<a>").is_err());
        assert!(parse_tree("</a>").is_err());
        assert!(parse_tree("<a></b>").is_err());
        assert!(parse_tree("<a>text</a>").is_err());
        assert!(parse_tree("<a/><b/>").is_err(), "two roots");
        assert!(parse_tree("< a/>").is_err());
        assert!(parse_tree("<a").is_err());
    }

    #[test]
    fn error_messages_name_the_tags() {
        let e = parse_tree("<a></b>").unwrap_err();
        assert!(e.to_string().contains('a') && e.to_string().contains('b'));
    }

    #[test]
    fn tag_name_characters() {
        let t = parse_tree("<books_2004><x-1.2/></books_2004>").unwrap();
        assert_eq!(t.label().as_str(), "books_2004");
        assert_eq!(t.children()[0].label().as_str(), "x-1.2");
    }
}
