//! E4 (Thm 4.5): streaming evaluation has small live state while the
//! materializing evaluator's footprint tracks the (exponential) output.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cv_xtree::parse_tree;
use xq_bench::doubling_query;

fn bench(c: &mut Criterion) {
    let t = parse_tree("<r/>").unwrap();
    let mut g = c.benchmark_group("stream_vs_materialize");
    g.sample_size(10);
    for n in [2usize, 4] {
        let q = doubling_query(n);
        g.bench_with_input(BenchmarkId::new("materializing", n), &q, |b, q| {
            b.iter(|| xq_core::eval_query(q, &t).unwrap().len())
        });
        g.bench_with_input(BenchmarkId::new("streaming", n), &q, |b, q| {
            b.iter(|| xq_stream::stream_query(q, &t, u64::MAX).unwrap().1)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
