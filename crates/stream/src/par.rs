//! The parallel streaming path: planner-sharded loops streamed by worker
//! threads, merged *incrementally* in chunk order.
//!
//! Workers do not materialize their chunk's output. Each one streams its
//! rows through the same cursor pipeline as the sequential paths and
//! hands the merger small interned-token runs over a bounded
//! [`run_queue`](xq_core::par::run_queue) — a worker that gets more than
//! [`QUEUE_CAP_TOKENS`] ahead of the merger blocks until the merger
//! catches up. The merger drains the queues in chunk (= iteration) order,
//! so the spliced stream is byte-identical to the sequential one while
//! peak in-flight memory is bounded by `workers × cap` tokens instead of
//! the full result size. The shared [`MergeGauge`] records the high-water
//! mark, reported as [`StreamStats::peak_buffered_tokens`].
//!
//! Error semantics match the materialized merge this replaced: every
//! worker runs its chunk to completion (an aborted merge only disconnects
//! their queues), and the first error in chunk order wins.

use crate::cursor::{bind, Binding, Env, Shared};
use crate::pipeline::build_query;
use crate::{StreamError, StreamStats};
use cv_xtree::{ArenaDoc, IToken, NodeId, Token};
use std::rc::Rc;
use std::sync::Arc;
use xq_core::ast::{Query, Var};
use xq_core::par::{chunks, run_queue, MergeGauge, RunMsg, RunTx};
use xq_core::plan::{ParPlan, ShardPlan};

/// Tokens a worker batches per run before handing off to the merger
/// (amortizes queue locking without meaningfully delaying the merge).
pub const RUN_TOKENS: usize = 512;

/// Per-queue cap on queued tokens: a worker this far ahead of the merger
/// blocks until the merger catches up.
pub const QUEUE_CAP_TOKENS: usize = 8 * 1024;

/// The parallel entry point's engine (see
/// [`stream_query_arena_par`](crate::stream_query_arena_par); `threads <=
/// 1` short-circuits before reaching here).
pub(crate) fn stream_par(
    q: &Query,
    doc: &ArenaDoc,
    max_pulls: u64,
    buffer_limit: usize,
    threads: usize,
) -> Result<(Vec<Token>, StreamStats), StreamError> {
    // The planner's filter predicates evaluate under the Figure 1
    // semantics; the agreement suites prove both engines semantically
    // identical, so a planner-filtered node set is exactly the item set
    // this engine would stream. Any planner fallback (including predicate
    // errors) lands on the sequential engine, which reproduces the
    // sequential stream — bytes and errors — by definition. The caller's
    // pull budget doubles as the planner's (shared, aggregate) predicate
    // allowance: steps and pulls are the same order of magnitude, and a
    // too-small allowance only means a sequential fallback — never extra
    // unbounded planning work on a budget-limited call.
    let plan_budget = xq_core::Budget {
        max_steps: max_pulls,
        max_items: max_pulls,
        ..xq_core::Budget::default()
    };
    let plan = ParPlan::of(q, doc, plan_budget);
    if !plan.engages() {
        return crate::stream_query_arena(q, doc, max_pulls, buffer_limit);
    }
    let root: Option<Vec<Token>> = plan.needs_root().then(|| doc.tokens());
    let mut exec = StreamExec {
        doc,
        max_pulls,
        buffer_limit,
        threads,
        root,
        hoisted: Vec::new(),
        out: Vec::new(),
        stats: StreamStats::default(),
        gauge: Arc::new(MergeGauge::new()),
    };
    exec.run(&plan)?;
    let StreamExec {
        out,
        mut stats,
        gauge,
        ..
    } = exec;
    stats.tokens_out = out.len() as u64;
    stats.peak_buffered_tokens = stats.peak_buffered_tokens.max(gauge.peak());
    Ok((out, stats))
}

/// Plan executor for the streaming engine.
struct StreamExec<'d> {
    doc: &'d ArenaDoc,
    max_pulls: u64,
    buffer_limit: usize,
    threads: usize,
    /// `$root` tokenized once (iff the plan needs it); workers re-wrap it.
    root: Option<Vec<Token>>,
    /// Hoisted `let` bindings in scope, tokenized once each.
    hoisted: Vec<(Var, Vec<Token>)>,
    out: Vec<Token>,
    stats: StreamStats,
    /// High-water mark over every merge queue of this execution.
    gauge: Arc<MergeGauge>,
}

impl StreamExec<'_> {
    fn merge_stats(&mut self, s: &StreamStats) {
        self.stats.pulls += s.pulls;
        self.stats.recomputations += s.recomputations;
        self.stats.buffered_sources += s.buffered_sources;
        self.stats.lazy_fallbacks += s.lazy_fallbacks;
        self.stats.peak_live_cursors = self.stats.peak_live_cursors.max(s.peak_live_cursors);
        self.stats.peak_buffered_tokens =
            self.stats.peak_buffered_tokens.max(s.peak_buffered_tokens);
    }

    fn run(&mut self, plan: &ParPlan<'_>) -> Result<(), StreamError> {
        match plan {
            ParPlan::Wrap(a, inner) => {
                self.out.push(Token::Open(a.clone()));
                self.run(inner)?;
                self.out.push(Token::Close(a.clone()));
                Ok(())
            }
            ParPlan::Seq(branches) => {
                // Branch order is concatenation order; the first error in
                // branch order wins, as sequentially.
                for b in branches {
                    self.run(b)?;
                }
                Ok(())
            }
            ParPlan::Hoist(v, node, inner) => {
                // `let $z := $root` is the common hoist; reuse the shared
                // root token build instead of re-walking the document.
                let tokens = match &self.root {
                    Some(rt) if *node == self.doc.root() => rt.clone(),
                    _ => self.doc.tokens_of(*node),
                };
                self.hoisted.push((v.clone(), tokens));
                let result = self.run(inner);
                self.hoisted.pop();
                result
            }
            ParPlan::Shard(sp) => self.run_shard(sp),
            ParPlan::Opaque(q) => {
                let shared = Shared::new(self.max_pulls, self.buffer_limit);
                let mut env: Env = None;
                if let Some(rt) = &self.root {
                    env = bind(&env, Var::root(), Binding::Input(Rc::from(&rt[..])));
                }
                for (v, t) in &self.hoisted {
                    env = bind(&env, v.clone(), Binding::Input(Rc::from(&t[..])));
                }
                let mut cursor = build_query(q, &env, &shared)?;
                while let Some(t) = cursor.pull()? {
                    self.out.push(t);
                }
                drop(cursor);
                let stats = shared.snapshot();
                self.merge_stats(&stats);
                Ok(())
            }
        }
    }

    fn run_shard(&mut self, sp: &ShardPlan<'_>) -> Result<(), StreamError> {
        // A planner-sharded loop is itself a per-source buffering
        // decision: the planner materialized the row set, exactly what a
        // completed `ItemBuffer` would hold. Count it so
        // `buffered_sources` stays consistent with the sequential paths.
        self.stats.buffered_sources += 1;
        let rows: Vec<&[NodeId]> = sp.rows().collect();
        let parts = chunks(&rows, self.threads);
        self.stats.workers = self.stats.workers.max(parts.len());
        let (doc, max_pulls, buffer_limit) = (self.doc, self.max_pulls, self.buffer_limit);
        let (vars, body) = (sp.vars(), sp.body());
        let root = self.root.as_deref();
        let hoisted = self.hoisted.as_slice();
        if parts.len() <= 1 {
            // One chunk: stream inline — no thread to pay for, and no
            // reason to round-trip the output through interned tokens.
            let chunk = parts.first().copied().unwrap_or(&[]);
            let out = &mut self.out;
            let s = stream_rows(
                doc,
                vars,
                body,
                chunk,
                max_pulls,
                buffer_limit,
                root,
                hoisted,
                |t| out.push(t),
            )?;
            self.merge_stats(&s);
            return Ok(());
        }
        let gauge = &self.gauge;
        let out = &mut self.out;
        type ChunkResult = Result<StreamStats, StreamError>;
        let merged: Result<Vec<StreamStats>, StreamError> = std::thread::scope(|scope| {
            let mut rxs = Vec::with_capacity(parts.len());
            for &chunk in &parts {
                let (tx, rx) = run_queue::<IToken, ChunkResult>(QUEUE_CAP_TOKENS, gauge.clone());
                scope.spawn(move || {
                    stream_chunk_runs(
                        doc,
                        vars,
                        body,
                        chunk,
                        max_pulls,
                        buffer_limit,
                        root,
                        hoisted,
                        tx,
                    )
                });
                rxs.push(rx);
            }
            // Merge on this thread, chunk by chunk in order. An error
            // returns early; dropping the remaining receivers disconnects
            // their workers (sends become no-ops), which finish their
            // chunks and exit before the scope joins them — the same
            // run-to-completion semantics as the materialized merge, so
            // the first error in chunk order wins deterministically.
            let mut per_chunk = Vec::with_capacity(rxs.len());
            for mut rx in rxs {
                loop {
                    match rx.recv() {
                        RunMsg::Run(run) => out.extend(run.iter().map(|t| t.resolve())),
                        RunMsg::Done(res) => {
                            per_chunk.push(res?);
                            break;
                        }
                    }
                }
            }
            Ok(per_chunk)
        });
        for s in merged? {
            self.merge_stats(&s);
        }
        Ok(())
    }
}

/// The row loop shared by the worker and inline shard paths: the body
/// streamed once per row, with loop-variable bindings tokenized straight
/// out of the shared arena and the `$root`/hoisted streams re-wrapped
/// from the one shared build; every output token goes to `emit` in
/// iteration order.
#[allow(clippy::too_many_arguments)]
fn stream_rows(
    doc: &ArenaDoc,
    vars: &[Var],
    body: &Query,
    rows: &[&[NodeId]],
    max_pulls: u64,
    buffer_limit: usize,
    root: Option<&[Token]>,
    hoisted: &[(Var, Vec<Token>)],
    mut emit: impl FnMut(Token),
) -> Result<StreamStats, StreamError> {
    let shared = Shared::new(max_pulls, buffer_limit);
    let root_rc: Option<Rc<[Token]>> = root.map(Rc::from);
    let hoisted_rc: Vec<(Var, Rc<[Token]>)> = hoisted
        .iter()
        .map(|(v, t)| (v.clone(), Rc::from(&t[..])))
        .collect();
    for &row in rows {
        let mut env: Env = None;
        if let Some(rt) = &root_rc {
            env = bind(&env, Var::root(), Binding::Input(rt.clone()));
        }
        for (v, t) in &hoisted_rc {
            env = bind(&env, v.clone(), Binding::Input(t.clone()));
        }
        for (v, &n) in vars.iter().zip(row) {
            env = bind(&env, v.clone(), Binding::Input(doc.tokens_of(n).into()));
        }
        let mut cursor = build_query(body, &env, &shared)?;
        while let Some(t) = cursor.pull()? {
            emit(t);
        }
    }
    Ok(shared.snapshot())
}

/// One worker's share of a sharded loop: [`stream_rows`] with the output
/// crossing to the merger as bounded interned-token runs instead of one
/// materialized buffer.
#[allow(clippy::too_many_arguments)]
fn stream_chunk_runs(
    doc: &ArenaDoc,
    vars: &[Var],
    body: &Query,
    rows: &[&[NodeId]],
    max_pulls: u64,
    buffer_limit: usize,
    root: Option<&[Token]>,
    hoisted: &[(Var, Vec<Token>)],
    tx: RunTx<IToken, Result<StreamStats, StreamError>>,
) {
    let mut batch: Vec<IToken> = Vec::with_capacity(RUN_TOKENS);
    let result = stream_rows(
        doc,
        vars,
        body,
        rows,
        max_pulls,
        buffer_limit,
        root,
        hoisted,
        |t| {
            batch.push(IToken::intern(&t));
            if batch.len() >= RUN_TOKENS {
                tx.send(std::mem::replace(
                    &mut batch,
                    Vec::with_capacity(RUN_TOKENS),
                ));
            }
        },
    );
    tx.send(batch);
    tx.finish(result);
}
