//! Golden disassembly listings for the bytecode compiler: representative
//! queries covering every opcode family (axis steps, element
//! construction, sequences, `for`/`let` loops, conditionals, both
//! quantifiers, connectives, all four axes, the desugared `if/else` and
//! `where` forms) compile to a pinned listing, so lowering changes
//! surface as reviewable golden-file diffs instead of silent drift.
//!
//! Regenerate after an intentional compiler change with
//!
//! ```text
//! XQ_UPDATE_GOLDEN=1 cargo test -p xq_core --test vm_golden
//! ```
//! and review the diff of `tests/golden/disasm.golden` like any other
//! code change. The listing is independent of documents, budgets, and
//! `XQ_ARENA`, so both CI passes pin the same bytes.

use std::fmt::Write as _;

/// The fixed query set. Changing this list invalidates the golden file
/// on purpose.
const QUERIES: [&str; 12] = [
    // The trivial plan.
    "()",
    // A child step off $root (free variable, no slots).
    "$root/a",
    // Element construction over a descendant step.
    "<out>{ $root//b }</out>",
    // A sequence of two steps.
    "($root/a, $root/b)",
    // The canonical loop: slot-bound variable, shardable source.
    "for $x in $root/* return <w>{ $x/* }</w>",
    // let-binding used twice — one slot, two loads.
    "let $x := $root/a return ($x, $x)",
    // if/else desugars to a Seq of guarded branches (negated const-eq).
    "if ($root =atomic <k/>) then <hit/> else <miss/>",
    // An existential quantifier inside a loop body.
    "for $x in $root/* return \
     if (some $y in $x/* satisfies ($y =atomic <k/>)) then $x",
    // Connectives and a universal quantifier (deep equality).
    "if (not($root/a) or every $z in $root/b satisfies ($z = $root)) \
     then <y/>",
    // Nested loops; self axis; mixed output.
    "for $x in $root/a return for $y in $x/self::* return ($y, <k/>)",
    // The descendant-or-self axis.
    "$root/dos::a",
    // where-sugar: filter folded into the body.
    "for $x in $root/* where $x =atomic <a/> return $x",
];

fn render_golden() -> String {
    let mut out = String::new();
    out.push_str(
        "Bytecode listings for the fixed query set in vm_golden.rs.\n\
         Regenerate with XQ_UPDATE_GOLDEN=1 after intentional compiler changes.\n",
    );
    for src in QUERIES {
        let plan = xq_core::compile_query_text(src).expect("golden query parses");
        writeln!(out, "\n{:=<72}", "").unwrap();
        out.push_str(&plan.disasm());
    }
    out
}

#[test]
fn disassembly_matches_the_golden_file() {
    let got = render_golden();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/disasm.golden");
    if std::env::var_os("XQ_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with XQ_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "disassembly drifted from tests/golden/disasm.golden; \
         if intentional, regenerate with XQ_UPDATE_GOLDEN=1"
    );
}
