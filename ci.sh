#!/usr/bin/env bash
# The full CI gate. Run from the repository root; exits nonzero on the
# first failing step. GitHub Actions (.github/workflows/ci.yml) runs this
# same script so local and hosted CI cannot drift.
set -euo pipefail

step() { printf '\n=== %s\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q --workspace"
cargo test -q --workspace

# The arena-vs-Rc differential surface beyond the workspace pass (which
# already runs arena_diff with XQ_ARENA unset): XQ_ARENA=1 reroutes the
# agreement suites' document loading through the arena store (see
# xq_core::doc). CI sets XQ_RANDOM_CASES=16; default to it here so local
# runs stay quick too.
step "agreement suites with XQ_ARENA=1"
XQ_ARENA=1 XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" \
    cargo test -q -p xq_core --test random_queries
XQ_ARENA=1 cargo test -q -p xq_complexity --test engine_agreement

# The data-parallel surface: par_diff sweeps 1/2/4/8 worker threads (plus
# whatever XQ_THREADS resolves to) on both parallel engines — including
# the planner suites (Seq-of-fors, nested fors, let-hoisted and
# where-filtered sources, and the parallelized⇒byte-identical property) —
# and the interner concurrency smoke test hammers the sharded global
# table from 8 threads. Run once more with XQ_ARENA=1 + XQ_THREADS=4 so
# the arena document store and a >1 thread knob are exercised together
# (par_diff's corpus documents route through DocRepr, so XQ_ARENA=1
# re-runs every planner shape on arena-loaded documents).
step "parallel + planner suites (par_diff, plan, interner_threads; XQ_ARENA=1 XQ_THREADS=4)"
XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" cargo test -q -p xq_core --test par_diff
XQ_ARENA=1 XQ_THREADS=4 XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" \
    cargo test -q -p xq_core --test par_diff
cargo test -q -p xq_core --lib plan
cargo test -q -p cv_xtree --test interner_threads

# The bytecode-VM surface: vm_diff proves interpreter, fresh plans, and
# warm cache hits byte- and counter-identical on the seeded coverage
# corpus; vm_golden pins the disassembly listings; plan_cache_threads
# hammers the lock-striped plan store from 8 threads. Run again with
# XQ_ARENA=1 + XQ_THREADS=4 so arena documents and the parallel entry
# points are exercised through compiled plans too.
step "bytecode VM suites (vm_diff, vm_golden, plan_cache_threads; XQ_ARENA=1 XQ_THREADS=4)"
XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" cargo test -q -p xq_core --test vm_diff
XQ_ARENA=1 XQ_THREADS=4 XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" \
    cargo test -q -p xq_core --test vm_diff
cargo test -q -p xq_core --test vm_golden
XQ_ARENA=1 XQ_THREADS=4 cargo test -q -p xq_core --test vm_golden
cargo test -q -p xq_core --test plan_cache_threads

# The streaming cursor-core surface: cursor_diff locks the refactored
# one-pipeline engine byte- and counter-identical (pulls, recomputations,
# peak_live_cursors, tokens_out, workers; errors at exact points under a
# pull-budget sweep) to the frozen pre-refactor engine
# (xq_bench::legacy_stream) on all four stream_query* entry points, and
# byte-identical to the Figure 1 interpreter. Run again with XQ_ARENA=1 +
# XQ_THREADS=4 so the corpus documents route through the arena store and
# the parallel sweep picks up the CI thread knob.
step "streaming cursor suites (cursor_diff; XQ_ARENA=1 XQ_THREADS=4)"
XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" cargo test -q -p xq_stream --test cursor_diff
XQ_ARENA=1 XQ_THREADS=4 XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" \
    cargo test -q -p xq_stream --test cursor_diff

# The serving surface: cancel_diff proves cancel-at-tick-k ≡ budget-cap-k
# across both engines (and that an untripped flag is byte-invisible);
# the xq_server package runs the protocol golden + malformed-frame fuzz
# + duplicate-id suite (proto), the bounded-queue / exact-shedding /
# no-lost-responses socket suite (load_shed), the token-bucket suite
# (rate_limit), the graceful-shutdown suite (drain), the pinned-seed
# chaos soak (chaos: injected worker panics, dropped completions, and
# refusals — zero lost or duplicated responses, pool self-healing),
# the backpressure + idle-timeout suite (pressure), the fault-spec
# environment gate (fault_env), and the protocol + epoll-binding +
# timer-wheel unit tests — all against the readiness-driven reactor
# front door. The supervision suite drives the unwind fence, restart
# budget, and RAII gauge contracts on the pool directly. Run again with
# XQ_ARENA=1 + XQ_THREADS=4 so cancellation, the socket path, and the
# chaos soak are exercised over arena documents and the parallel entry
# points.
step "serving suites (cancel_diff, supervision, xq_server; XQ_ARENA=1 XQ_THREADS=4)"
XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" cargo test -q -p xq_core --test cancel_diff
XQ_ARENA=1 XQ_THREADS=4 XQ_RANDOM_CASES="${XQ_RANDOM_CASES:-16}" \
    cargo test -q -p xq_core --test cancel_diff
cargo test -q -p xq_core --test supervision
XQ_ARENA=1 XQ_THREADS=4 cargo test -q -p xq_core --test supervision
cargo test -q -p xq_server
XQ_ARENA=1 XQ_THREADS=4 cargo test -q -p xq_server

step "T16 parallel-scaling table (machine-readable: BENCH_T16.json)"
cargo run --release -p xq_bench --bin harness -- --only t16 --json BENCH_T16.json > /dev/null

step "T17 planner-coverage table (machine-readable: BENCH_T17.json)"
cargo run --release -p xq_bench --bin harness -- --only t17 --json BENCH_T17.json > /dev/null

step "T18 VM-vs-interpreter table (machine-readable: BENCH_T18.json)"
cargo run --release -p xq_bench --bin harness -- --only t18 --json BENCH_T18.json > /dev/null

step "T19 network-serving table (machine-readable: BENCH_T19.json)"
cargo run --release -p xq_bench --bin harness -- --only t19 --json BENCH_T19.json > /dev/null

step "T20 connection-scaling table (machine-readable: BENCH_T20.json)"
cargo run --release -p xq_bench --bin harness -- --only t20 --json BENCH_T20.json > /dev/null

step "T21 chaos-soak table (machine-readable: BENCH_T21.json)"
cargo run --release -p xq_bench --bin harness -- --only t21 --json BENCH_T21.json > /dev/null

step "T22 cursor-core table (machine-readable: BENCH_T22.json)"
cargo run --release -p xq_bench --bin harness -- --only t22 --json BENCH_T22.json > /dev/null

step "cargo bench --no-run --workspace (bench targets must compile)"
# --workspace matters: from the root, plain `cargo bench` only builds the
# umbrella package's benches and would skip every xq_bench target.
cargo bench --no-run --workspace

step "cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "examples"
for ex in quickstart monad_algebra_tour composition_elimination complexity_frontier; do
    echo "--- cargo run --release --example $ex"
    cargo run --release --example "$ex" > /dev/null
done

step "cargo fmt --check"
cargo fmt --check

echo
echo "CI green."
