//! The path-based semantics of monad algebra (Koch, PODS 2005, §5.1,
//! Figures 4–6) — the machinery behind the NEXPTIME upper bound.
//!
//! * [`Term`] — nested paths (terms over a binary symbol `f`), with the
//!   paper's dot/parenthesis notation;
//! * [`semantics`] — deterministic trees as path sets and the Figure 4
//!   operator rules, with `U^τ` decoding back to complex values;
//! * [`proof`] — proof trees certifying path membership (Figure 6), with
//!   the statistics the Theorem 5.2 argument bounds (branching ≤ 2,
//!   polynomial path sizes);
//! * [`treepaths`] — the same flat path-set encoding applied to XML data
//!   trees, with an arena fast path over `cv_xtree::ArenaDoc`.

pub mod proof;
pub mod semantics;
mod term;
pub mod treepaths;

pub use proof::{prove, ProofNode, ProofStats};
pub use semantics::{
    decode, eval_paths, eval_paths_with, map_b, map_e, value_paths, PathBudget, PathError, PathSet,
};
pub use term::{parse_term, Term};
pub use treepaths::{doc_paths, tree_paths};

/// The running example of Figures 5 and 6:
/// `⟨A: {1,2}, B: {2,3}⟩ ∘ pairwithA ∘ map(pairwithB ∘ map(A =atomic B))
///  ∘ flatten ∘ flatten`.
pub fn figure_5_query() -> cv_monad::Expr {
    use cv_monad::{Cond, Expr, Operand};
    let const_ab = Expr::konst(cv_value::parse_value("<A: {1, 2}, B: {2, 3}>").expect("literal"));
    const_ab
        .then(Expr::pairwith("A"))
        .then(
            Expr::pairwith("B")
                .then(Expr::Pred(Cond::eq_atomic(Operand::path("A"), Operand::path("B"))).mapped())
                .mapped(),
        )
        .then(Expr::Flatten)
        .then(Expr::Flatten)
}

/// The canonical Boolean input `{⟨⟩}` as a path set: `{1.⟨⟩}` (Thm 5.2).
pub fn unit_input() -> PathSet {
    [Term::cons(Term::sym("1"), Term::unit())]
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_5_query_is_well_formed() {
        let q = figure_5_query();
        assert!(q.is_monotone());
        let out = eval_paths(&q, &unit_input()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
