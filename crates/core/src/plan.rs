//! The parallel planner: which parts of a query shard across threads.
//!
//! PR 4's data-parallel layer recognized exactly one shape — an
//! element-wrapped outer `for` over a `$root` step chain — via the ad-hoc
//! [`outer_for_split`](crate::par::outer_for_split). This module replaces
//! that with a recursive analysis producing a [`ParPlan`], so the thread
//! split reaches the shapes that dominate the paper's combined-complexity
//! workloads (`for`-nests, `Seq`s of loops, `let`-prefixed pipelines,
//! `where`-filtered sources):
//!
//! * **`Seq` branches** plan independently: each branch shards on its own
//!   and the executor concatenates branch results in branch order, which
//!   is exactly Figure 1's `Seq` semantics.
//! * **Nested `for`s flatten**: `for $x in σ₁ return for $y in σ₂ return β`
//!   becomes a single work-list of `(node, node)` rows (row-major, i.e.
//!   iteration order) whenever both sources resolve to arena node sets —
//!   σ₂ may be grounded at `$root` *or* at `$x`, since the planner
//!   resolves it once per outer node by pure arena axis scans. Flattening
//!   recurses, so deeper nests produce wider rows, until
//!   [`MAX_FLAT_ROWS`] caps the materialized work-list.
//! * **`let`-bound sources hoist**: a `for`/`let` whose source resolves to
//!   exactly one node binds that node in the planner's environment and
//!   planning continues *inside* the body — so
//!   `let $z := $root return for $x in $z/a …` still shards the inner
//!   loop. (With more than one node, `let` *is* `for` in this dialect —
//!   see [`Query::Let`] — and shards as a loop.)
//! * **Predicate-filtered sources** resolve: a source of the shape
//!   `for $w in σ where φ return $w` (the parser desugars `where` to
//!   `if φ then $w`) resolves σ to nodes and evaluates φ per candidate —
//!   via the Figure 1 condition semantics, all candidates drawing on one
//!   shared instance of the caller's budget — keeping the passing nodes.
//!   Filtered loops therefore still shard. Any evaluation error during
//!   filtering (including exhausting that shared allowance) aborts
//!   resolution, and the query falls back to the sequential engine, which
//!   reproduces the error (or the result) exactly.
//!
//! Anything the analysis cannot prove shardable becomes an
//! [`ParPlan::Opaque`] leaf and runs on the ordinary sequential evaluator
//! with the full environment — so a plan is *always* executable, and the
//! executors' byte-identical-to-sequential contract (see
//! [`crate::par`]) holds for every shape, not just the recognized ones.
//! The `par_diff` differential suite asserts this at 1/2/4/8 threads over
//! random queries biased toward every planner shape.

use crate::ast::{cond_as_query, Query, Var};
use crate::fragments::free_vars;
use crate::semantics::{eval_cond_with_stats, Budget, Env};
use cv_xtree::{ArenaDoc, Label, NodeId, Tree};

/// Ceiling on the number of `NodeId` slots a flattened work-list may
/// materialize (rows × row width). Flattening a `for`-nest trades memory
/// proportional to the *iteration count* for shardability; past this cap
/// the planner stops flattening deeper and shards the outer levels only
/// (the inner loops stay in the body, evaluated per row as usual).
pub const MAX_FLAT_ROWS: usize = 1 << 20;

/// A parallel execution plan for a query over one arena document. Borrows
/// the query; build one per (query, document) evaluation.
#[derive(Debug)]
pub enum ParPlan<'q> {
    /// Element construction around an inner plan: execute the inner plan,
    /// wrap its result list in one `⟨a⟩…⟨/a⟩` node.
    Wrap(Label, Box<ParPlan<'q>>),
    /// Independently planned branches; results concatenate in branch
    /// order (Figure 1 `Seq`).
    Seq(Vec<ParPlan<'q>>),
    /// A `for`/`let` binding whose source resolved to exactly one arena
    /// node: the executor binds the variable to that node's subtree once
    /// (materialized once, shared with every worker) and runs the inner
    /// plan — the "hoisted `let` source" of the module docs.
    Hoist(Var, NodeId, Box<ParPlan<'q>>),
    /// A shardable loop (possibly a flattened nest): the work-list rows
    /// split across workers.
    Shard(ShardPlan<'q>),
    /// Not provably shardable: run this subquery on the sequential
    /// evaluator under the ambient environment.
    Opaque(&'q Query),
}

/// A shardable loop: `vars` (outermost first) bind row-wise to the nodes
/// of `rows`, and `body` evaluates once per row. Row order is iteration
/// order, so concatenating per-row results in row order reproduces the
/// sequential output byte-for-byte.
#[derive(Debug)]
pub struct ShardPlan<'q> {
    vars: Vec<Var>,
    /// `len() = vars.len() × row count`; stride is [`ShardPlan::width`].
    rows: Vec<NodeId>,
    body: &'q Query,
}

impl<'q> ShardPlan<'q> {
    /// Loop variables, outermost first.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of nodes per row (= number of loop variables).
    pub fn width(&self) -> usize {
        self.vars.len()
    }

    /// Number of work items (loop iterations).
    pub fn len(&self) -> usize {
        self.rows.len() / self.width()
    }

    /// True iff the loop has no iterations.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The work-list as width-strided rows, in iteration order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[NodeId]> + Clone {
        self.rows.chunks(self.width())
    }

    /// The loop body, evaluated once per row with [`ShardPlan::vars`]
    /// bound to the row's node subtrees.
    pub fn body(&self) -> &'q Query {
        self.body
    }
}

impl<'q> ParPlan<'q> {
    /// Plans `q` over `doc`. `budget` bounds the *total* filter-predicate
    /// work performed while resolving filtered sources: every predicate
    /// evaluation across the whole planning session draws on one shared
    /// instance of it, so planner work never exceeds one sequential
    /// evaluation's allowance. Exhaustion aborts the affected resolution
    /// and that loop falls back to the sequential path.
    pub fn of(q: &'q Query, doc: &ArenaDoc, budget: Budget) -> ParPlan<'q> {
        ParPlan::of_with_root_cache(q, doc, budget, None).0
    }

    /// [`ParPlan::of`], threading the root-tree build through the
    /// planning session: `root_seed` is an already-materialized root tree
    /// (e.g. a `QueryService` worker's document cache hit) the planner
    /// will use instead of building its own for `$root`-referencing
    /// filter predicates; the returned tree is whichever build the
    /// session ended up holding (the seed, or the planner's own), so
    /// executors and caches reuse it instead of making another — keeping
    /// the "root built once per query" contract across planner, executor,
    /// and service cache.
    pub fn of_with_root_cache(
        q: &'q Query,
        doc: &ArenaDoc,
        budget: Budget,
        root_seed: Option<Tree>,
    ) -> (ParPlan<'q>, Option<Tree>) {
        let mut planner = Planner {
            doc,
            remaining: budget,
            root: root_seed,
        };
        let mut env = Vec::new();
        let plan = planner.plan(q, &mut env);
        (plan, planner.root)
    }

    /// Whether executing this plan would actually split work across
    /// threads: some loop sharded with at least two work items. When
    /// false, callers take the plain sequential path.
    pub fn engages(&self) -> bool {
        match self {
            ParPlan::Wrap(_, p) | ParPlan::Hoist(_, _, p) => p.engages(),
            ParPlan::Seq(ps) => ps.iter().any(ParPlan::engages),
            ParPlan::Shard(sp) => sp.len() >= 2,
            ParPlan::Opaque(_) => false,
        }
    }

    /// Total sharded work items across all loops in the plan (the
    /// [`ParStats::outer_items`](crate::ParStats::outer_items) figure).
    pub fn sharded_items(&self) -> usize {
        match self {
            ParPlan::Wrap(_, p) | ParPlan::Hoist(_, _, p) => p.sharded_items(),
            ParPlan::Seq(ps) => ps.iter().map(ParPlan::sharded_items).sum(),
            ParPlan::Shard(sp) => sp.len(),
            ParPlan::Opaque(_) => 0,
        }
    }

    /// Whether any evaluated part (shard body or opaque leaf) references
    /// `$root` — i.e. whether the executor must materialize the root tree
    /// (once, before the thread split) at all.
    pub fn needs_root(&self) -> bool {
        match self {
            ParPlan::Wrap(_, p) | ParPlan::Hoist(_, _, p) => p.needs_root(),
            ParPlan::Seq(ps) => ps.iter().any(ParPlan::needs_root),
            ParPlan::Shard(sp) => free_vars(sp.body).contains(&Var::root()),
            ParPlan::Opaque(q) => free_vars(q).contains(&Var::root()),
        }
    }
}

/// Planner state: the document, the shared predicate allowance (the
/// caller's budget, drawn down by every filter verdict), and the lazily
/// materialized root tree (built only if some filter predicate actually
/// mentions `$root`).
struct Planner<'d> {
    doc: &'d ArenaDoc,
    remaining: Budget,
    root: Option<Tree>,
}

/// Bindings the planner has pinned to arena nodes (hoisted `let`s and,
/// during nest flattening, the outer loop variables of the current row).
/// Innermost binding last, as in the evaluator's environment.
type NodeEnv = Vec<(Var, NodeId)>;

fn node_env_lookup(env: &[(Var, NodeId)], v: &Var) -> Option<NodeId> {
    env.iter()
        .rev()
        .find(|(name, _)| name == v)
        .map(|&(_, n)| n)
}

impl<'d> Planner<'d> {
    fn plan<'q>(&mut self, q: &'q Query, env: &mut NodeEnv) -> ParPlan<'q> {
        let plan = self.plan_uncollapsed(q, env);
        // A composite with no Shard inside does exactly what the
        // sequential evaluator does, in more pieces — collapse it.
        if plan.sharded_items() == 0 && !matches!(plan, ParPlan::Opaque(_)) {
            return ParPlan::Opaque(q);
        }
        plan
    }

    fn plan_uncollapsed<'q>(&mut self, q: &'q Query, env: &mut NodeEnv) -> ParPlan<'q> {
        match q {
            Query::Elem(a, body) => ParPlan::Wrap(a.clone(), Box::new(self.plan(body, env))),
            Query::Seq(a, b) => {
                // Flatten right-nested Seq spines into one branch list so
                // `(α, β, γ)` plans as three independent branches.
                let mut branches = Vec::new();
                self.plan_seq(a, env, &mut branches);
                self.plan_seq(b, env, &mut branches);
                ParPlan::Seq(branches)
            }
            Query::For(v, source, body) | Query::Let(v, source, body) => {
                let Some(nodes) = self.resolve(source, env) else {
                    return ParPlan::Opaque(q);
                };
                if let [node] = nodes[..] {
                    // Singleton source: hoist the binding and keep
                    // planning inside the body (`let $z := $root …`).
                    env.push((v.clone(), node));
                    let inner = self.plan(body, env);
                    env.pop();
                    return ParPlan::Hoist(v.clone(), node, Box::new(inner));
                }
                self.flatten_loop(v, nodes, body, env)
            }
            // Everything else — conditionals, bare steps, variables,
            // constants — evaluates sequentially. (A bare `$root/a` *is* a
            // node source, but emitting its subtrees is all the work there
            // is; a thread split would only move the serialization.)
            _ => ParPlan::Opaque(q),
        }
    }

    fn plan_seq<'q>(&mut self, q: &'q Query, env: &mut NodeEnv, out: &mut Vec<ParPlan<'q>>) {
        match q {
            Query::Seq(a, b) => {
                self.plan_seq(a, env, out);
                self.plan_seq(b, env, out);
            }
            other => out.push(self.plan(other, env)),
        }
    }

    /// Shards `for v in nodes return body`, flattening directly nested
    /// `for`/`let` loops into wider rows while their sources resolve.
    fn flatten_loop<'q>(
        &mut self,
        v: &Var,
        nodes: Vec<NodeId>,
        body: &'q Query,
        env: &mut NodeEnv,
    ) -> ParPlan<'q> {
        let mut vars = vec![v.clone()];
        let mut rows = nodes;
        let mut body = body;
        'deeper: while let Query::For(v2, s2, b2) | Query::Let(v2, s2, b2) = body {
            let width = vars.len();
            let mut next = Vec::new();
            for row in rows.chunks(width) {
                let depth = env.len();
                env.extend(vars.iter().cloned().zip(row.iter().copied()));
                let resolved = self.resolve(s2, env);
                env.truncate(depth);
                let Some(inner) = resolved else { break 'deeper };
                if next.len() + inner.len() * (width + 1) > MAX_FLAT_ROWS {
                    break 'deeper;
                }
                for n2 in inner {
                    next.extend_from_slice(row);
                    next.push(n2);
                }
            }
            vars.push(v2.clone());
            rows = next;
            body = b2;
        }
        ParPlan::Shard(ShardPlan { vars, rows, body })
    }

    /// Resolves a `for`-source to the arena nodes it selects, in document
    /// order with multiplicity — exactly the items (as subtrees) the
    /// Figure 1 semantics would bind. Handles `$root`, planner-pinned
    /// variables, axis-step chains, and filter loops
    /// (`for $w in σ [where φ] return $w`). `None` means "not a node
    /// source" (constructed intermediates, free variables, conditionals,
    /// or a predicate that errored) and sends the caller to the
    /// sequential path.
    fn resolve(&mut self, source: &Query, env: &NodeEnv) -> Option<Vec<NodeId>> {
        match source {
            Query::Var(v) if *v == Var::root() => Some(vec![self.doc.root()]),
            Query::Var(v) => node_env_lookup(env, v).map(|n| vec![n]),
            Query::Step(base, axis, test) => {
                let bases = self.resolve(base, env)?;
                let mut out = Vec::new();
                for b in bases {
                    out.extend(self.doc.axis(b, *axis, test));
                }
                Some(out)
            }
            Query::For(w, inner, body) | Query::Let(w, inner, body) => {
                let candidates = self.resolve(inner, env)?;
                match &**body {
                    // Identity loop: `for $w in σ return $w` ≡ σ.
                    Query::Var(v) if v == w => Some(candidates),
                    // Filter loop: `for $w in σ where φ return $w`.
                    Query::If(cond, then) if matches!(&**then, Query::Var(v) if v == w) => {
                        self.filter(w, candidates, cond, env)
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Keeps the candidates satisfying `cond` (with `w` bound to the
    /// candidate's subtree), evaluating the predicate with the Figure 1
    /// condition semantics. **All** predicate evaluations of the whole
    /// planning session draw on *one* instance of the caller's budget
    /// (`self.remaining`, decremented by the resources each verdict
    /// consumed), so planner work is bounded by a single sequential
    /// evaluation's allowance — never candidates × budget. Any evaluation
    /// error, including exhausting that shared allowance, aborts
    /// resolution (→ sequential fallback, which reproduces the error or
    /// the result exactly — predicates run *before* any loop body in
    /// Figure 1's `For`, so error order is preserved).
    fn filter(
        &mut self,
        w: &Var,
        candidates: Vec<NodeId>,
        cond: &crate::ast::Cond,
        env: &NodeEnv,
    ) -> Option<Vec<NodeId>> {
        let fv = free_vars(&cond_as_query(cond));
        let mut tree_env = Env::new();
        if fv.contains(&Var::root()) {
            let doc = self.doc;
            let root = self.root.get_or_insert_with(|| doc.to_tree()).clone();
            tree_env.bind(Var::root(), root);
        }
        for (v, n) in env {
            if fv.contains(v) {
                tree_env.bind(v.clone(), self.doc.subtree(*n));
            }
        }
        let mut out = Vec::new();
        for n in candidates {
            tree_env.bind(w.clone(), self.doc.subtree(n));
            let verdict = eval_cond_with_stats(cond, &tree_env, self.remaining.clone());
            tree_env.pop();
            match verdict {
                Ok((pass, stats)) => {
                    self.remaining.max_steps = self.remaining.max_steps.saturating_sub(stats.steps);
                    self.remaining.max_items = self.remaining.max_items.saturating_sub(stats.items);
                    if pass {
                        out.push(n);
                    }
                }
                Err(_) => return None,
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn arena(src: &str) -> ArenaDoc {
        ArenaDoc::parse(src).unwrap()
    }

    fn plan<'q>(q: &'q Query, doc: &ArenaDoc) -> ParPlan<'q> {
        ParPlan::of(q, doc, Budget::default())
    }

    #[test]
    fn outer_for_still_plans_as_a_shard() {
        let doc = arena("<r><a/><a/><a/></r>");
        let q = parse_query("<out>{ for $x in $root/a return <w>{ $x }</w> }</out>").unwrap();
        let p = plan(&q, &doc);
        assert!(p.engages());
        assert_eq!(p.sharded_items(), 3);
        let ParPlan::Wrap(tag, inner) = &p else {
            panic!("expected Wrap, got {p:?}")
        };
        assert_eq!(tag, &Label::from("out"));
        let ParPlan::Shard(sp) = &**inner else {
            panic!("expected Shard, got {inner:?}")
        };
        assert_eq!(sp.width(), 1);
        assert_eq!(sp.len(), 3);
        assert!(!p.needs_root());
    }

    #[test]
    fn seq_branches_plan_independently() {
        let doc = arena("<r><a/><a/><b/><b/></r>");
        let q = parse_query(
            "(for $x in $root/a return <w>{ $x }</w>, \
              <mid/>, \
              for $y in $root/b return <v>{ $y }</v>)",
        )
        .unwrap();
        let p = plan(&q, &doc);
        let ParPlan::Seq(branches) = &p else {
            panic!("expected Seq, got {p:?}")
        };
        assert_eq!(branches.len(), 3);
        assert!(matches!(branches[0], ParPlan::Shard(_)));
        assert!(matches!(branches[1], ParPlan::Opaque(_)));
        assert!(matches!(branches[2], ParPlan::Shard(_)));
        assert_eq!(p.sharded_items(), 4);
    }

    #[test]
    fn nested_fors_flatten_to_node_pairs() {
        let doc = arena("<r><a><b/><b/></a><a><b/></a></r>");
        // Inner source grounded at the outer variable: per-node resolution.
        let q = parse_query("for $x in $root/a return for $y in $x/b return <p/>").unwrap();
        let p = plan(&q, &doc);
        let ParPlan::Shard(sp) = &p else {
            panic!("expected flattened Shard, got {p:?}")
        };
        assert_eq!(sp.width(), 2);
        assert_eq!(sp.len(), 3, "2 b-children + 1 b-child");
        // Inner source grounded at $root: the cross-join shape.
        let q = parse_query("for $x in $root/a return for $y in $root//b return <p/>").unwrap();
        let ParPlan::Shard(sp) = plan(&q, &doc) else {
            panic!("expected Shard")
        };
        assert_eq!(sp.len(), 6, "2 × 3 cross product");
    }

    #[test]
    fn let_sources_hoist_and_inner_loops_still_shard() {
        let doc = arena("<r><a/><a/></r>");
        let q = parse_query("let $z := $root return for $x in $z/a return <w/>").unwrap();
        let p = plan(&q, &doc);
        let ParPlan::Hoist(v, n, inner) = &p else {
            panic!("expected Hoist, got {p:?}")
        };
        assert_eq!(v.name(), "z");
        assert_eq!(*n, doc.root());
        assert!(matches!(&**inner, ParPlan::Shard(_)));
        assert!(p.engages());
        // A multi-node let is a loop (let ≡ for in this dialect).
        let q = parse_query("let $z := $root/a return <w>{ $z }</w>").unwrap();
        assert!(matches!(plan(&q, &doc), ParPlan::Shard(_)));
    }

    #[test]
    fn filtered_sources_resolve_and_shard() {
        let doc = arena("<r><a><b/></a><a/><a><b/></a></r>");
        let q = parse_query(
            "for $x in (for $w in $root/a where $w/b return $w) return <hit>{ $x }</hit>",
        )
        .unwrap();
        let ParPlan::Shard(sp) = plan(&q, &doc) else {
            panic!("expected Shard")
        };
        assert_eq!(sp.len(), 2, "two a-nodes carry a b-child");
        // The identity loop resolves too.
        let q = parse_query("for $x in (for $w in $root/a return $w) return <w/>").unwrap();
        let ParPlan::Shard(sp) = plan(&q, &doc) else {
            panic!("expected Shard")
        };
        assert_eq!(sp.len(), 3);
        // A predicate that errors (unbound variable) falls back.
        let q = parse_query(
            "for $x in (for $w in $root/a where $w = $nope return $w) \
                             return <w/>",
        )
        .unwrap();
        assert!(matches!(plan(&q, &doc), ParPlan::Opaque(_)));
    }

    #[test]
    fn filter_predicate_work_is_bounded_by_the_shared_budget() {
        // Aggregate filter work draws on ONE instance of the caller's
        // budget; exhausting it aborts resolution (sequential fallback)
        // instead of evaluating every candidate on a fresh allowance.
        let doc = arena("<r><a><b/></a><a/><a><b/></a></r>");
        let q =
            parse_query("for $x in (for $w in $root/a where $w/b return $w) return <f>{ $x }</f>")
                .unwrap();
        assert!(
            plan(&q, &doc).engages(),
            "an ample budget resolves the filter"
        );
        let starved = Budget {
            max_steps: 0,
            ..Budget::default()
        };
        assert!(
            matches!(ParPlan::of(&q, &doc, starved), ParPlan::Opaque(_)),
            "a zero predicate allowance must fall back, not keep evaluating"
        );
    }

    #[test]
    fn opaque_shapes_do_not_engage() {
        let doc = arena("<r><a/><a/></r>");
        for src in [
            "$root/a",                                      // bare step
            "<solo/>",                                      // constant
            "for $x in (<w><a/></w>)/a return $x",          // constructed source
            "if ($root = $root) then <y/>",                 // top-level if
            "for $x in $root/zzz return <w/>",              // empty source
            "for $x in $root/self::r return <w>{ $x }</w>", // single item
        ] {
            let q = parse_query(src).unwrap();
            assert!(!plan(&q, &doc).engages(), "{src} must not engage");
        }
    }

    #[test]
    fn needs_root_tracks_shard_bodies_and_opaque_leaves() {
        let doc = arena("<r><a/><a/></r>");
        let q = parse_query("for $x in $root/a return <w>{ $x }</w>").unwrap();
        assert!(!plan(&q, &doc).needs_root());
        let q = parse_query("for $x in $root/a return ($x, $root)").unwrap();
        assert!(plan(&q, &doc).needs_root());
        let q = parse_query("(for $x in $root/a return <w/>, $root/a)").unwrap();
        assert!(plan(&q, &doc).needs_root(), "opaque branch mentions $root");
    }

    #[test]
    fn flattening_respects_the_row_cap() {
        // A 3-level nest over the same 4 nodes: 4³ = 64 rows, width 3 —
        // comfortably under the cap, so it flattens fully.
        let doc = arena("<r><a/><a/><a/><a/></r>");
        let q = parse_query(
            "for $x in $root/a return for $y in $root/a return \
             for $z in $root/a return <p/>",
        )
        .unwrap();
        let ParPlan::Shard(sp) = plan(&q, &doc) else {
            panic!("expected Shard")
        };
        assert_eq!((sp.width(), sp.len()), (3, 64));
    }
}
