//! Deterministic pseudo-random tree generation for tests and benchmarks.
//!
//! Uses a small embedded linear-congruential generator rather than an
//! external RNG so that generated workloads are reproducible across crates
//! without dependency coupling; the bench crate seeds it per experiment.

use crate::{ArenaBuilder, ArenaDoc, Document, Label, LabelId, Tree};

/// A tiny splitmix64-based generator for reproducible workloads.
#[derive(Clone, Debug)]
pub struct TreeGen {
    state: u64,
}

impl TreeGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TreeGen {
        TreeGen {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform choice from a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Bernoulli trial with probability `num/denom`.
    pub fn chance(&mut self, num: usize, denom: usize) -> bool {
        self.below(denom) < num
    }
}

/// The shared random structure behind [`random_tree`] and
/// [`random_arena_document`]: parent pointers and per-node label strings,
/// drawn in a fixed RNG order so both representations of the same seed
/// describe the *same* document. The shape is a random recursive tree:
/// each new node attaches to a random recent node (biased so depth grows),
/// yielding realistic document-ish shapes.
fn random_structure<'a>(
    gen: &mut TreeGen,
    size: usize,
    labels: &[&'a str],
) -> (Vec<Vec<usize>>, Vec<&'a str>) {
    assert!(size >= 1, "a tree has at least one node");
    assert!(!labels.is_empty(), "need at least one label");
    let mut parents: Vec<usize> = vec![0; size];
    for (i, p) in parents.iter_mut().enumerate().skip(1) {
        // Attach to one of the last ~8 nodes to keep depth interesting.
        let window = 8.min(i);
        *p = i - 1 - gen.below(window);
    }
    let node_labels: Vec<&str> = (0..size).map(|_| *gen.choose(labels)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); size];
    for (i, &p) in parents.iter().enumerate().skip(1) {
        children[p].push(i);
    }
    (children, node_labels)
}

/// Generates a random tree with exactly `size` nodes and labels drawn
/// from `labels`. Deterministic per seed; [`random_arena_document`] with
/// the same generator state produces the identical document arena-natively.
pub fn random_tree(gen: &mut TreeGen, size: usize, labels: &[&str]) -> Tree {
    let (children, node_labels) = random_structure(gen, size, labels);
    fn build(i: usize, labels: &[&str], children: &[Vec<usize>]) -> Tree {
        Tree::node(
            Label::from(labels[i]),
            children[i].iter().map(|&c| build(c, labels, children)),
        )
    }
    build(0, &node_labels, &children)
}

/// Generates a forest of `count` random trees of `size` nodes each.
pub fn random_forest(gen: &mut TreeGen, count: usize, size: usize, labels: &[&str]) -> Vec<Tree> {
    (0..count).map(|_| random_tree(gen, size, labels)).collect()
}

/// Generates a random document (arena form).
pub fn random_document(gen: &mut TreeGen, size: usize, labels: &[&str]) -> Document {
    Document::new(&random_tree(gen, size, labels))
}

/// [`random_tree`], but built directly into an [`ArenaDoc`]: no `Rc` tree
/// is ever materialized. Consumes the generator exactly like
/// [`random_tree`], so for equal seeds
/// `random_arena_document(g, …).to_tree() == random_tree(g, …)`.
pub fn random_arena_document(gen: &mut TreeGen, size: usize, labels: &[&str]) -> ArenaDoc {
    let (children, node_labels) = random_structure(gen, size, labels);
    let mut b = ArenaBuilder::with_capacity(size);
    let ids: Vec<LabelId> = node_labels.iter().map(LabelId::intern).collect();
    // Iterative preorder over the child lists.
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, next child idx)
    b.open(ids[0]);
    stack.push((0, 0));
    while let Some((v, next)) = stack.last_mut() {
        if let Some(&c) = children[*v].get(*next) {
            *next += 1;
            b.open(ids[c]);
            stack.push((c, 0));
        } else {
            b.close();
            stack.pop();
        }
    }
    b.finish()
}

/// The document-side doubling families: three generator shapes whose node
/// count is `Θ(2^n)`, used to scale the T15 arena-vs-`Rc` experiments the
/// way `doubling_query` scales the streaming ones. Each family builds both
/// representations — [`tree`](DoublingFamily::tree) via `Rc` nodes,
/// [`arena`](DoublingFamily::arena) natively into the parallel vectors —
/// and the two are equal for every `n` (tested).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DoublingFamily {
    /// A perfect binary tree of depth `n`: `2^(n+1) − 1` nodes, labels
    /// alternating `a`/`b` by depth under an `r` root.
    Binary,
    /// A root with `2^n` leaf children, labels cycling `a`/`b`/`c` — the
    /// flattest shape (one huge child span).
    Wide,
    /// A spine of `2^n` `s` nodes, each inner one carrying a `t` leaf —
    /// the deepest shape (`2^(n+1) − 1` nodes). Deep recursion hazard for
    /// `Rc` trees; both builders here are iterative.
    Comb,
}

impl DoublingFamily {
    /// All three families, for suites that sweep them.
    pub const ALL: [DoublingFamily; 3] = [
        DoublingFamily::Binary,
        DoublingFamily::Wide,
        DoublingFamily::Comb,
    ];

    /// Number of nodes of the instance at doubling parameter `n`.
    pub fn size(self, n: u32) -> u64 {
        match self {
            DoublingFamily::Binary | DoublingFamily::Comb => (1 << (n + 1)) - 1,
            DoublingFamily::Wide => (1 << n) + 1,
        }
    }

    /// The `Rc`-tree instance at parameter `n`.
    pub fn tree(self, n: u32) -> Tree {
        match self {
            DoublingFamily::Binary => {
                // Perfect binary tree of depth n; recursion depth is n.
                fn bin(d: u32, n: u32) -> Tree {
                    let label = if d == 0 { "r" } else { binary_label(d) };
                    if d == n {
                        Tree::leaf(label)
                    } else {
                        Tree::node(label, [bin(d + 1, n), bin(d + 1, n)])
                    }
                }
                bin(0, n)
            }
            DoublingFamily::Wide => {
                Tree::node("r", (0..1u64 << n).map(|i| Tree::leaf(wide_label(i))))
            }
            DoublingFamily::Comb => {
                // Built from the deepest spine node up, so construction is
                // iterative (destruction of the Rc chain still recurses —
                // keep n moderate for the tree form).
                let mut t = Tree::leaf("s");
                for _ in 1..1u64 << n {
                    t = Tree::node("s", [Tree::leaf("t"), t]);
                }
                t
            }
        }
    }

    /// The arena-native instance at parameter `n` — identical to
    /// `ArenaDoc::from_tree(&self.tree(n))` but with no `Rc` churn.
    pub fn arena(self, n: u32) -> ArenaDoc {
        let mut b = ArenaBuilder::with_capacity(self.size(n) as usize);
        match self {
            DoublingFamily::Binary => {
                let labels: Vec<LabelId> = (0..=n)
                    .map(|d| LabelId::intern(if d == 0 { "r" } else { binary_label(d) }))
                    .collect();
                // Recursion depth is n, same as the tree builder.
                fn grow(b: &mut ArenaBuilder, labels: &[LabelId], d: u32, n: u32) {
                    if d == n {
                        b.leaf(labels[d as usize]);
                        return;
                    }
                    b.open(labels[d as usize]);
                    grow(b, labels, d + 1, n);
                    grow(b, labels, d + 1, n);
                    b.close();
                }
                grow(&mut b, &labels, 0, n);
            }
            DoublingFamily::Wide => {
                let cycle = [
                    LabelId::intern("a"),
                    LabelId::intern("b"),
                    LabelId::intern("c"),
                ];
                b.open("r");
                for i in 0..1u64 << n {
                    b.leaf(cycle[(i % 3) as usize]);
                }
                b.close();
            }
            DoublingFamily::Comb => {
                let (s, t) = (LabelId::intern("s"), LabelId::intern("t"));
                let spine = 1u64 << n;
                for _ in 1..spine {
                    b.open(s);
                    b.leaf(t);
                }
                b.leaf(s);
                for _ in 1..spine {
                    b.close();
                }
            }
        }
        b.finish()
    }
}

impl std::fmt::Display for DoublingFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DoublingFamily::Binary => "binary",
            DoublingFamily::Wide => "wide",
            DoublingFamily::Comb => "comb",
        })
    }
}

fn binary_label(depth: u32) -> &'static str {
    if depth % 2 == 0 {
        "a"
    } else {
        "b"
    }
}

fn wide_label(i: u64) -> &'static str {
    ["a", "b", "c"][(i % 3) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tree_has_requested_size() {
        let mut g = TreeGen::new(7);
        for size in [1, 2, 10, 257] {
            let t = random_tree(&mut g, size, &["a", "b", "c"]);
            assert_eq!(t.size(), size as u64);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t1 = random_tree(&mut TreeGen::new(42), 50, &["a", "b"]);
        let t2 = random_tree(&mut TreeGen::new(42), 50, &["a", "b"]);
        let t3 = random_tree(&mut TreeGen::new(43), 50, &["a", "b"]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3, "different seeds should differ (with high prob.)");
    }

    #[test]
    fn labels_come_from_alphabet() {
        let t = random_tree(&mut TreeGen::new(1), 100, &["x", "y"]);
        fn check(t: &Tree) {
            assert!(matches!(t.label().as_str(), "x" | "y"));
            t.children().iter().for_each(check);
        }
        check(&t);
    }

    #[test]
    fn forest_and_document_helpers() {
        let mut g = TreeGen::new(3);
        let f = random_forest(&mut g, 4, 10, &["a"]);
        assert_eq!(f.len(), 4);
        let d = random_document(&mut g, 25, &["a", "b"]);
        assert_eq!(d.len(), 25);
    }

    #[test]
    fn arena_generator_matches_tree_generator() {
        for (seed, size) in [(0u64, 1usize), (7, 10), (42, 137)] {
            let t = random_tree(&mut TreeGen::new(seed), size, &["a", "b", "k"]);
            let a = random_arena_document(&mut TreeGen::new(seed), size, &["a", "b", "k"]);
            assert_eq!(a.len(), size);
            assert_eq!(a.to_tree(), t, "seed {seed} size {size}");
        }
    }

    #[test]
    fn doubling_families_agree_across_representations() {
        for family in DoublingFamily::ALL {
            for n in 0..7u32 {
                let t = family.tree(n);
                let a = family.arena(n);
                assert_eq!(t.size(), family.size(n), "{family} n={n} tree size");
                assert_eq!(a.len() as u64, family.size(n), "{family} n={n} arena size");
                assert_eq!(a.to_tree(), t, "{family} n={n}");
            }
        }
    }

    #[test]
    fn doubling_family_shapes() {
        // Binary: depth n+1; wide: depth 2; comb: depth 2^n.
        assert_eq!(DoublingFamily::Binary.tree(3).height(), 4);
        assert_eq!(DoublingFamily::Wide.tree(5).height(), 2);
        assert_eq!(DoublingFamily::Comb.tree(4).height(), 16);
        assert_eq!(
            DoublingFamily::Wide.tree(3).children().len(),
            8,
            "wide fanout is 2^n"
        );
    }

    #[test]
    fn rng_helpers_behave() {
        let mut g = TreeGen::new(9);
        for _ in 0..100 {
            assert!(g.below(10) < 10);
        }
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(g.choose(&items)));
        }
        // chance(1,1) is always true; chance(0,5) never.
        assert!(g.chance(1, 1));
        assert!(!g.chance(0, 5));
    }
}
