//! The denotational semantics of Core XQuery, exactly as in Figure 1.
//!
//! `[[α]]_k(~e)` maps a `k`-tuple of trees (the environment) to a list of
//! trees. We index the environment by variable name rather than position;
//! since every binder introduces a distinct scope this is equivalent, with
//! inner bindings shadowing outer ones.
//!
//! Like the monad-algebra evaluator, this one materializes results and is
//! budgeted: Core XQuery can build results of doubly exponential size
//! (Prop 4.2 via Lemma 3.3), so the engine reports resource exhaustion
//! instead of dying.

use crate::ast::{Cond, EqMode, Query, Var};
use cv_xtree::Tree;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many worker threads the data-parallel entry points
/// ([`crate::par::eval_query_par`] and friends) may use. The sequential
/// evaluator ignores this knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Threads {
    /// Single-threaded (the default — identical to the sequential path).
    #[default]
    One,
    /// One worker per available hardware thread.
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    N(usize),
}

impl Threads {
    /// The concrete worker count this knob resolves to on this machine.
    pub fn count(self) -> usize {
        match self {
            Threads::One => 1,
            Threads::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Threads::N(n) => n.max(1),
        }
    }

    /// Reads the `XQ_THREADS` environment variable: unset or `1` mean
    /// [`Threads::One`]; `auto` (or `0`) means [`Threads::Auto`]; any
    /// other number means [`Threads::N`]. The CI parallel suites set this.
    pub fn from_env() -> Threads {
        match std::env::var("XQ_THREADS").ok().as_deref() {
            None | Some("" | "1") => Threads::One,
            Some("auto" | "0") => Threads::Auto,
            Some(n) => n.parse().map_or(Threads::One, Threads::N),
        }
    }
}

/// A shared cooperative cancellation flag.
///
/// Clone it into a [`Budget`] (the clone shares state) and keep one copy:
/// calling [`CancelFlag::cancel`] from any thread makes every engine
/// holding that budget — the Figure 1 interpreter, the bytecode VM, and
/// all parallel workers they spawn — fail with [`XqError::Cancelled`] at
/// its **next budget tick**, the `step()` charge both engines make at
/// every `tick.q`/`tick.c` site. Cancellation latency is therefore one
/// budget-tick granularity, and since the VM is tick-exact to the
/// interpreter (`vm_diff`), a cancellation observed at tick `k` aborts
/// both engines at the same evaluation point (`cancel_diff` pins this).
///
/// The network front door (`xq_server`) attaches one flag per in-flight
/// request: an explicit cancel frame or a client disconnect sets it, and
/// the evaluation unwinds mid-query instead of running to completion.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// 0 on production flags (polls are not counted — parallel workers
    /// share the flag and a `fetch_add` per tick would put a contended
    /// cache line in the innermost loop). Nonzero enables the counting
    /// device below for the differential suites.
    trip_at: AtomicU64,
    polls: AtomicU64,
}

impl CancelFlag {
    /// A fresh, unset flag (the production constructor: polling it costs
    /// two relaxed atomic loads per budget tick).
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// A flag that counts its polls and trips itself on poll number `n`
    /// (1-based) — the deterministic cancel-at-tick-`k` device of the
    /// `cancel_diff` suite. Real clients set the flag asynchronously with
    /// [`CancelFlag::cancel`] instead; this device exists so tests can pin
    /// *exactly which tick* observes the cancellation, single-threaded.
    pub fn tripping_at(n: u64) -> CancelFlag {
        let flag = CancelFlag::new();
        flag.inner.trip_at.store(n.max(1), Ordering::Relaxed);
        flag
    }

    /// A flag that counts its polls but never trips — attach it to a run
    /// to observe how many budget ticks polled it (the "same evaluation
    /// point" witness in `cancel_diff`).
    pub fn counting() -> CancelFlag {
        CancelFlag::tripping_at(u64::MAX)
    }

    /// Requests cancellation: every evaluation holding a budget with this
    /// flag fails at its next budget tick.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (an observer read — does
    /// not count as a poll).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Polls observed so far (0 unless built by [`CancelFlag::counting`]
    /// or [`CancelFlag::tripping_at`]).
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }

    /// The engine-side check, called once per budget tick.
    pub(crate) fn poll(&self) -> bool {
        let trip_at = self.inner.trip_at.load(Ordering::Relaxed);
        if trip_at != 0 {
            let polls = self.inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
            if polls >= trip_at {
                self.cancel();
            }
        }
        self.is_cancelled()
    }
}

/// Resource limits for one evaluation.
///
/// **Zero is never "unlimited".** `max_steps: 0` permits no evaluation
/// steps at all (the first step errors), and `max_items: 0` permits no
/// result items. The parallel workers rely on this: they thread the
/// remaining budget through a `saturating_sub` chain between loop items,
/// so a worker that *exactly* exhausts its cap mid-chunk continues with a
/// cap of 0 and fails deterministically on the next item — audited here
/// and regression-tested in `par::tests` and below.
///
/// The same "zero means nothing" discipline covers the serving fields: a
/// [`CancelFlag`] that is already set or a [`Budget::deadline`] already in
/// the past rejects at the **first** budget tick, before any evaluation
/// work — never "ignored because evaluation just started" (regression-
/// tested below, mirroring the zero-cap contract).
#[derive(Clone, Debug)]
pub struct Budget {
    /// Maximum number of evaluation steps. 0 forbids any step.
    pub max_steps: u64,
    /// Maximum number of trees put into result lists. 0 forbids any item.
    pub max_items: u64,
    /// Worker threads for the data-parallel entry points (the sequential
    /// evaluator ignores this). In the parallel path each worker draws on
    /// the step/item caps independently for its chunk, so a query that
    /// fits the budget sequentially always fits it in parallel.
    pub threads: Threads,
    /// Cooperative cancellation: when set, both engines poll the flag at
    /// every budget tick and abort with [`XqError::Cancelled`]. Budget
    /// clones share the flag, so all parallel workers of one request
    /// observe one cancellation. `None` (the default) costs nothing.
    pub cancel: Option<CancelFlag>,
    /// Absolute deadline: when set, both engines compare it against the
    /// monotonic clock at every budget tick and abort with
    /// [`XqError::DeadlineExceeded`] once passed. `None` (the default)
    /// never reads the clock.
    pub deadline: Option<Instant>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_steps: 20_000_000,
            max_items: 10_000_000,
            threads: Threads::One,
            cancel: None,
            deadline: None,
        }
    }
}

impl Budget {
    /// This budget with the given thread knob.
    pub fn with_threads(self, threads: Threads) -> Budget {
        Budget { threads, ..self }
    }

    /// This budget observing the given cancellation flag (cloning the
    /// budget shares the flag).
    pub fn with_cancel(self, flag: CancelFlag) -> Budget {
        Budget {
            cancel: Some(flag),
            ..self
        }
    }

    /// This budget with an absolute deadline.
    pub fn with_deadline(self, deadline: Instant) -> Budget {
        Budget {
            deadline: Some(deadline),
            ..self
        }
    }

    /// This budget with a deadline `timeout` from now.
    pub fn with_deadline_in(self, timeout: Duration) -> Budget {
        self.with_deadline(Instant::now() + timeout)
    }

    /// The admission-time check: fails fast if the budget could never
    /// admit a first tick — the cancel flag is already set, the deadline
    /// already passed, or the step cap is 0. Evaluating such a budget
    /// fails identically at tick 1; front doors call this *before*
    /// parsing or queueing so doomed requests are rejected without
    /// consuming pool capacity.
    pub fn preflight(&self) -> Result<(), XqError> {
        if let Some(flag) = &self.cancel {
            if flag.is_cancelled() {
                return Err(XqError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(XqError::DeadlineExceeded);
            }
        }
        if self.max_steps == 0 {
            return Err(XqError::Budget { which: "steps" });
        }
        Ok(())
    }

    /// Charges one evaluation step (the `tick.q`/`tick.c` budget-tick
    /// site): polls the cancel flag, then the deadline, then the step
    /// cap — in that order, so a cancelled *and* exhausted run reports
    /// [`XqError::Cancelled`] deterministically. `steps` is the counter
    /// value *after* the increment. Both engines route every tick through
    /// here, which is what makes cancellation engine-agnostic.
    #[inline]
    pub(crate) fn charge_step(&self, steps: u64) -> Result<(), XqError> {
        if let Some(flag) = &self.cancel {
            if flag.poll() {
                return Err(XqError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(XqError::DeadlineExceeded);
            }
        }
        if steps > self.max_steps {
            return Err(XqError::Budget { which: "steps" });
        }
        Ok(())
    }

    /// Charges one emitted result item. Items do not poll the cancel
    /// flag — every emission is adjacent to a step tick, and keeping
    /// polls == steps gives `cancel_diff` an exact evaluation-point
    /// witness.
    #[inline]
    pub(crate) fn charge_item(&self, items: u64) -> Result<(), XqError> {
        if items > self.max_items {
            return Err(XqError::Budget { which: "items" });
        }
        Ok(())
    }
}

/// Counters reported by [`eval_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStats {
    /// Evaluation steps performed.
    pub steps: u64,
    /// Trees appended to intermediate or final result lists.
    pub items: u64,
    /// Deepest environment (number of simultaneously live bindings).
    pub max_env_depth: usize,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XqError {
    /// A free variable was not bound in the environment.
    UnboundVariable(String),
    /// `=mon` is not an XQuery equality.
    BadEqualityMode,
    /// The budget was exhausted.
    Budget {
        /// `"steps"` or `"items"`.
        which: &'static str,
    },
    /// The run's [`CancelFlag`] was set (client disconnect, explicit
    /// cancel frame, shutdown) and a budget tick observed it.
    Cancelled,
    /// The run's [`Budget::deadline`] passed and a budget tick observed
    /// it.
    DeadlineExceeded,
}

impl std::fmt::Display for XqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XqError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            XqError::BadEqualityMode => f.write_str("=mon is not an XQuery equality"),
            XqError::Budget { which } => write!(f, "budget exhausted ({which})"),
            XqError::Cancelled => f.write_str("evaluation cancelled"),
            XqError::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

impl std::error::Error for XqError {}

/// A variable environment: name/tree bindings, later entries shadowing
/// earlier ones (Figure 1's `~e`).
///
/// Bindings live in a stack (preserving scope order and shadowing), and a
/// side map indexes each name to its binding positions, so
/// [`Env::lookup`] is one hash probe instead of a linear scan over the
/// live bindings — on a deep `for`-nest the scan is O(nesting depth)
/// *per variable reference*, which the T16 harness row measures.
#[derive(Clone, Debug, Default)]
pub struct Env {
    bindings: Vec<(Var, Tree)>,
    /// name → stack of indices into `bindings` (innermost last).
    index: HashMap<Var, Vec<u32>>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// An environment with the root variable bound to `t`.
    pub fn with_root(t: Tree) -> Env {
        let mut e = Env::new();
        e.bind(Var::root(), t);
        e
    }

    /// Adds a binding (shadowing any earlier one of the same name).
    pub fn bind(&mut self, v: Var, t: Tree) {
        let slot = self.bindings.len() as u32;
        self.index.entry(v.clone()).or_default().push(slot);
        self.bindings.push((v, t));
    }

    /// Removes the innermost binding (the evaluator's scope exit).
    pub(crate) fn pop(&mut self) {
        let (v, _) = self.bindings.pop().expect("pop on an empty environment");
        let slots = self.index.get_mut(&v).expect("binding was indexed");
        slots.pop();
        if slots.is_empty() {
            self.index.remove(&v);
        }
    }

    /// Looks up the innermost binding of `v`.
    pub fn lookup(&self, v: &Var) -> Option<&Tree> {
        let &slot = self.index.get(v)?.last()?;
        Some(&self.bindings[slot as usize].1)
    }

    /// The pre-index lookup: a reverse linear scan over the binding stack.
    /// Kept as the reference implementation — property tests assert it
    /// agrees with [`Env::lookup`], and the `par_scaling` bench contrasts
    /// their costs on deep `for`-nests.
    #[doc(hidden)]
    pub fn lookup_linear(&self, v: &Var) -> Option<&Tree> {
        self.bindings
            .iter()
            .rev()
            .find(|(name, _)| name == v)
            .map(|(_, t)| t)
    }

    /// Number of bindings.
    pub fn depth(&self) -> usize {
        self.bindings.len()
    }
}

struct Interp {
    budget: Budget,
    stats: EvalStats,
}

impl Interp {
    fn step(&mut self) -> Result<(), XqError> {
        self.stats.steps += 1;
        self.budget.charge_step(self.stats.steps)
    }

    fn emit(&mut self, out: &mut Vec<Tree>, t: Tree) -> Result<(), XqError> {
        self.stats.items += 1;
        self.budget.charge_item(self.stats.items)?;
        out.push(t);
        Ok(())
    }

    fn eval(&mut self, q: &Query, env: &mut Env) -> Result<Vec<Tree>, XqError> {
        self.step()?;
        self.stats.max_env_depth = self.stats.max_env_depth.max(env.depth());
        match q {
            Query::Empty => Ok(Vec::new()),
            Query::Elem(a, body) => {
                let children = self.eval(body, env)?;
                let mut out = Vec::with_capacity(1);
                self.emit(&mut out, Tree::node(a.clone(), children))?;
                Ok(out)
            }
            Query::Seq(x, y) => {
                let mut out = self.eval(x, env)?;
                let rest = self.eval(y, env)?;
                for t in rest {
                    self.emit(&mut out, t)?;
                }
                Ok(out)
            }
            Query::Var(v) => {
                let t = env
                    .lookup(v)
                    .ok_or_else(|| XqError::UnboundVariable(v.name().to_string()))?
                    .clone();
                let mut out = Vec::with_capacity(1);
                self.emit(&mut out, t)?;
                Ok(out)
            }
            Query::Step(base, axis, test) => {
                let bases = self.eval(base, env)?;
                let mut out = Vec::new();
                for t in &bases {
                    for s in t.axis(*axis) {
                        self.step()?;
                        if test.matches(s.label()) {
                            self.emit(&mut out, s)?;
                        }
                    }
                }
                Ok(out)
            }
            Query::For(v, source, body) => {
                let items = self.eval(source, env)?;
                let mut out = Vec::new();
                for t in items {
                    env.bind(v.clone(), t);
                    let r = self.eval(body, env);
                    env.pop();
                    for x in r? {
                        self.emit(&mut out, x)?;
                    }
                }
                Ok(out)
            }
            Query::If(cond, then) => {
                if self.eval_cond(cond, env)? {
                    self.eval(then, env)
                } else {
                    Ok(Vec::new())
                }
            }
            Query::Let(v, bound, body) => {
                // (let $x := α) β ≡ for $x in α return β when α is an
                // element constructor (singleton); we use the general
                // for-desugaring uniformly.
                let items = self.eval(bound, env)?;
                let mut out = Vec::new();
                for t in items {
                    env.bind(v.clone(), t);
                    let r = self.eval(body, env);
                    env.pop();
                    for x in r? {
                        self.emit(&mut out, x)?;
                    }
                }
                Ok(out)
            }
        }
    }

    fn tree_eq(a: &Tree, b: &Tree, mode: EqMode) -> Result<bool, XqError> {
        match mode {
            EqMode::Deep => Ok(a == b),
            // Atomic equality compares root labels; on leaves this is
            // equality of atomic values (see `Cond::VarEq` docs).
            EqMode::Atomic => Ok(a.label() == b.label()),
            EqMode::Mon => Err(XqError::BadEqualityMode),
        }
    }

    fn eval_cond(&mut self, c: &Cond, env: &mut Env) -> Result<bool, XqError> {
        self.step()?;
        match c {
            Cond::True => Ok(true),
            Cond::VarEq(x, y, mode) => {
                let tx = env
                    .lookup(x)
                    .ok_or_else(|| XqError::UnboundVariable(x.name().to_string()))?;
                let ty = env
                    .lookup(y)
                    .ok_or_else(|| XqError::UnboundVariable(y.name().to_string()))?;
                Self::tree_eq(tx, ty, *mode)
            }
            Cond::ConstEq(x, a, mode) => {
                let tx = env
                    .lookup(x)
                    .ok_or_else(|| XqError::UnboundVariable(x.name().to_string()))?
                    .clone();
                Self::tree_eq(&tx, &Tree::leaf(a.clone()), *mode)
            }
            Cond::Query(q) => Ok(!self.eval(q, env)?.is_empty()),
            Cond::Some(v, source, sat) => {
                let items = self.eval(source, env)?;
                for t in items {
                    env.bind(v.clone(), t);
                    let r = self.eval_cond(sat, env);
                    env.pop();
                    if r? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Cond::Every(v, source, sat) => {
                let items = self.eval(source, env)?;
                for t in items {
                    env.bind(v.clone(), t);
                    let r = self.eval_cond(sat, env);
                    env.pop();
                    if !r? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Cond::And(a, b) => Ok(self.eval_cond(a, env)? && self.eval_cond(b, env)?),
            Cond::Or(a, b) => Ok(self.eval_cond(a, env)? || self.eval_cond(b, env)?),
            Cond::Not(a) => Ok(!self.eval_cond(a, env)?),
        }
    }
}

/// Evaluates `q` in `env` under `budget`, returning the result list and
/// the evaluation statistics.
pub fn eval_with(q: &Query, env: &Env, budget: Budget) -> Result<(Vec<Tree>, EvalStats), XqError> {
    let mut interp = Interp {
        budget,
        stats: EvalStats::default(),
    };
    let mut env = env.clone();
    let out = interp.eval(q, &mut env)?;
    Ok((out, interp.stats))
}

/// Evaluates `q` on input tree `t` (bound to `$root`), default budget.
pub fn eval_query(q: &Query, t: &Tree) -> Result<Vec<Tree>, XqError> {
    eval_with(q, &Env::with_root(t.clone()), Budget::default()).map(|(r, _)| r)
}

/// Evaluates a condition in an environment (exposed for engines that share
/// the Figure 1 condition semantics).
pub fn eval_cond_with(c: &Cond, env: &Env, budget: Budget) -> Result<bool, XqError> {
    eval_cond_with_stats(c, env, budget).map(|(b, _)| b)
}

/// [`eval_cond_with`] reporting the resources it consumed — the parallel
/// planner uses this to charge filter-predicate evaluations against one
/// shared budget instance across all candidates.
pub fn eval_cond_with_stats(
    c: &Cond,
    env: &Env,
    budget: Budget,
) -> Result<(bool, EvalStats), XqError> {
    let mut interp = Interp {
        budget,
        stats: EvalStats::default(),
    };
    let mut env = env.clone();
    let verdict = interp.eval_cond(c, &mut env)?;
    Ok((verdict, interp.stats))
}

/// The paper's Boolean-query convention for XQuery (§7.1): a query
/// `⟨a⟩α⟨/a⟩` is true iff the root of its result has at least one child.
/// For bare queries the convention "nonempty result list" (§2.1) is used.
pub fn boolean_result(q: &Query, t: &Tree) -> Result<bool, XqError> {
    let out = eval_query(q, t)?;
    match (q, out.as_slice()) {
        (Query::Elem(_, _), [single]) => Ok(!single.children().is_empty()),
        (_, trees) => Ok(!trees.is_empty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_xtree::{parse_tree, Axis, NodeTest};

    fn t(src: &str) -> Tree {
        parse_tree(src).unwrap()
    }

    fn run(q: &Query, src: &str) -> Vec<Tree> {
        eval_query(q, &t(src)).unwrap()
    }

    fn render(ts: &[Tree]) -> String {
        ts.iter().map(Tree::to_xml).collect()
    }

    #[test]
    fn empty_and_var() {
        assert_eq!(run(&Query::Empty, "<a/>"), vec![]);
        assert_eq!(
            render(&run(&Query::var("root"), "<a><b/></a>")),
            "<a><b/></a>"
        );
    }

    #[test]
    fn element_construction_wraps_list() {
        let q = Query::elem("out", Query::seq([Query::leaf("x"), Query::leaf("y")]));
        assert_eq!(render(&run(&q, "<a/>")), "<out><x/><y/></out>");
    }

    #[test]
    fn steps_follow_axes_in_document_order() {
        let doc = "<r><a><b/></a><c/><a/></r>";
        let child_a = Query::child(Query::var("root"), "a");
        assert_eq!(render(&run(&child_a, doc)), "<a><b/></a><a/>");
        let desc_any = Query::step(Query::var("root"), Axis::Descendant, NodeTest::Wildcard);
        assert_eq!(render(&run(&desc_any, doc)), "<a><b/></a><b/><c/><a/>");
        let self_r = Query::step(Query::var("root"), Axis::SelfAxis, NodeTest::tag("r"));
        assert_eq!(run(&self_r, doc).len(), 1);
    }

    #[test]
    fn for_concatenates_bodies_in_order() {
        // for $x in $root/* return <w>{$x}</w>
        let q = Query::for_in(
            "x",
            Query::child_any(Query::var("root")),
            Query::elem("w", Query::var("x")),
        );
        assert_eq!(
            render(&run(&q, "<r><a/><b/></r>")),
            "<w><a/></w><w><b/></w>"
        );
    }

    #[test]
    fn if_conditions() {
        let q = Query::if_then(Cond::True, Query::leaf("y"));
        assert_eq!(render(&run(&q, "<a/>")), "<y/>");
        let q = Query::if_then(Cond::query(Query::Empty), Query::leaf("y"));
        assert_eq!(run(&q, "<a/>"), vec![]);
        // Nonempty query condition.
        let q = Query::if_then(
            Cond::query(Query::child(Query::var("root"), "b")),
            Query::leaf("y"),
        );
        assert_eq!(render(&run(&q, "<a><b/></a>")), "<y/>");
        assert_eq!(run(&q, "<a><c/></a>"), vec![]);
    }

    #[test]
    fn equality_modes() {
        // for $x in $root/* return for $y in $root/* return
        //   if $x = $y then <eq/>
        let body = |mode| {
            Query::for_in(
                "x",
                Query::child_any(Query::var("root")),
                Query::for_in(
                    "y",
                    Query::child_any(Query::var("root")),
                    Query::if_then(Cond::VarEq("x".into(), "y".into(), mode), Query::leaf("eq")),
                ),
            )
        };
        // Deep: <a><b/></a> vs <a/> differ; diagonal matches only: 2 of 4.
        assert_eq!(run(&body(EqMode::Deep), "<r><a><b/></a><a/></r>").len(), 2);
        // Atomic compares root labels: all 4 pairs match.
        assert_eq!(
            run(&body(EqMode::Atomic), "<r><a><b/></a><a/></r>").len(),
            4
        );
    }

    #[test]
    fn const_eq_and_derived_conditions() {
        let q = Query::for_in(
            "x",
            Query::child_any(Query::var("root")),
            Query::if_then(
                Cond::ConstEq("x".into(), "true".into(), EqMode::Atomic),
                Query::leaf("hit"),
            ),
        );
        assert_eq!(run(&q, "<r><true/><false/></r>").len(), 1);
    }

    #[test]
    fn some_and_every() {
        let some_b = Cond::some(
            "y",
            Query::child_any(Query::var("root")),
            Cond::ConstEq("y".into(), "b".into(), EqMode::Atomic),
        );
        let every_b = Cond::every(
            "y",
            Query::child_any(Query::var("root")),
            Cond::ConstEq("y".into(), "b".into(), EqMode::Atomic),
        );
        let test = |c: &Cond, src: &str| {
            eval_cond_with(c, &Env::with_root(t(src)), Budget::default()).unwrap()
        };
        assert!(test(&some_b, "<r><a/><b/></r>"));
        assert!(!test(&some_b, "<r><a/></r>"));
        assert!(!test(&every_b, "<r><a/><b/></r>"));
        assert!(test(&every_b, "<r><b/><b/></r>"));
        assert!(test(&every_b, "<r/>"), "every is vacuously true");
    }

    #[test]
    fn desugared_forms_agree_with_native_forms() {
        let native = Cond::some(
            "y",
            Query::child_any(Query::var("root")),
            Cond::ConstEq("y".into(), "b".into(), EqMode::Atomic),
        )
        .and(Cond::True);
        let mut fresh = 0;
        let desugared = native.desugar(&mut fresh);
        for src in ["<r><a/><b/></r>", "<r><a/></r>", "<r/>"] {
            let env = Env::with_root(t(src));
            assert_eq!(
                eval_cond_with(&native, &env, Budget::default()).unwrap(),
                eval_cond_with(&desugared, &env, Budget::default()).unwrap(),
                "src = {src}"
            );
        }
    }

    #[test]
    fn variable_shadowing() {
        // for $x in $root/a return for $x in $x/* return $x
        let q = Query::for_in(
            "x",
            Query::child(Query::var("root"), "a"),
            Query::for_in("x", Query::child_any(Query::var("x")), Query::var("x")),
        );
        assert_eq!(render(&run(&q, "<r><a><inner/></a></r>")), "<inner/>");
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let r = eval_query(&Query::var("nope"), &t("<a/>"));
        assert!(matches!(r, Err(XqError::UnboundVariable(_))));
    }

    #[test]
    fn boolean_result_convention() {
        let yes = Query::elem("res", Query::leaf("hit"));
        let no = Query::elem("res", Query::Empty);
        assert!(boolean_result(&yes, &t("<a/>")).unwrap());
        assert!(!boolean_result(&no, &t("<a/>")).unwrap());
        // Bare queries: nonempty list.
        assert!(boolean_result(&Query::var("root"), &t("<a/>")).unwrap());
        assert!(!boolean_result(&Query::Empty, &t("<a/>")).unwrap());
    }

    #[test]
    fn budget_guards_blowup() {
        // Repeated doubling: for $x in (α α) return ... grows 2^n.
        let mut q = Query::leaf("z");
        for i in 0..40 {
            q = Query::for_in(
                format!("v{i}").as_str(),
                Query::Seq(Arc::new(q.clone()), Arc::new(q)),
                Query::leaf("z"),
            );
        }
        let r = eval_with(
            &q,
            &Env::with_root(t("<a/>")),
            Budget {
                max_steps: 50_000,
                max_items: 50_000,
                ..Budget::default()
            },
        );
        assert!(matches!(r, Err(XqError::Budget { .. })));
    }

    use std::sync::Arc;

    #[test]
    fn zero_budget_means_nothing_allowed_not_unlimited() {
        // The contract the parallel saturating_sub chain depends on: a cap
        // of 0 rejects the very first step/item, deterministically.
        let zero_steps = Budget {
            max_steps: 0,
            ..Budget::default()
        };
        let r = eval_with(&Query::Empty, &Env::with_root(t("<a/>")), zero_steps);
        assert!(matches!(r, Err(XqError::Budget { which: "steps" })));
        let zero_items = Budget {
            max_items: 0,
            ..Budget::default()
        };
        let r = eval_with(&Query::leaf("a"), &Env::with_root(t("<a/>")), zero_items);
        assert!(matches!(r, Err(XqError::Budget { which: "items" })));
    }

    #[test]
    fn preset_cancel_flag_rejects_the_first_tick() {
        // The zero-cap contract extended to the new fields: a flag that is
        // already set when evaluation starts must abort at the very first
        // tick, even on `Query::Empty` — never "run a bit, then notice".
        let flag = CancelFlag::new();
        flag.cancel();
        let b = Budget::default().with_cancel(flag);
        let r = eval_with(&Query::Empty, &Env::with_root(t("<a/>")), b.clone());
        assert!(matches!(r, Err(XqError::Cancelled)));
        // And the VM-shared charge path agrees before any work happens.
        assert!(matches!(b.preflight(), Err(XqError::Cancelled)));
    }

    #[test]
    fn past_deadline_rejects_the_first_tick() {
        let long_ago = Instant::now() - Duration::from_secs(1);
        let b = Budget::default().with_deadline(long_ago);
        let r = eval_with(&Query::Empty, &Env::with_root(t("<a/>")), b.clone());
        assert!(matches!(r, Err(XqError::DeadlineExceeded)));
        assert!(matches!(b.preflight(), Err(XqError::DeadlineExceeded)));
    }

    #[test]
    fn preflight_rejects_zero_steps_like_evaluation_does() {
        // The front door uses preflight() to shed doomed requests before
        // queuing them; it must agree with the evaluator's zero-cap rule.
        let b = Budget {
            max_steps: 0,
            ..Budget::default()
        };
        assert!(matches!(
            b.preflight(),
            Err(XqError::Budget { which: "steps" })
        ));
        assert!(Budget::default().preflight().is_ok());
    }

    #[test]
    fn tripping_flag_cancels_at_the_exact_tick_with_a_polls_witness() {
        // The determinism device cancel_diff builds on: a flag armed to
        // trip at poll n cancels exactly at tick n, and `polls()` reports
        // where evaluation stopped.
        let q = Query::for_in("x", Query::child_any(Query::var("root")), Query::var("x"));
        let env = Env::with_root(t("<r><a/><b/><c/></r>"));
        let (_, full) = eval_with(&q, &env, Budget::default()).unwrap();
        assert!(full.steps > 2);
        let k = full.steps / 2;
        let flag = CancelFlag::tripping_at(k);
        let r = eval_with(&q, &env, Budget::default().with_cancel(flag.clone()));
        assert!(matches!(r, Err(XqError::Cancelled)));
        assert_eq!(flag.polls(), k, "cancelled at exactly tick k");
        // A counting flag that never trips leaves the run untouched and
        // witnesses one poll per step.
        let counting = CancelFlag::counting();
        let (_, stats) =
            eval_with(&q, &env, Budget::default().with_cancel(counting.clone())).unwrap();
        assert_eq!(stats.steps, full.steps);
        assert_eq!(counting.polls(), full.steps);
    }

    #[test]
    fn stats_track_env_depth() {
        let q = Query::for_in(
            "x",
            Query::child_any(Query::var("root")),
            Query::for_in("y", Query::child_any(Query::var("x")), Query::var("y")),
        );
        let (_, stats) = eval_with(
            &q,
            &Env::with_root(t("<r><a><b/></a></r>")),
            Budget::default(),
        )
        .unwrap();
        assert_eq!(stats.max_env_depth, 3); // root, x, y
    }

    #[test]
    fn mon_equality_rejected() {
        let q = Query::if_then(
            Cond::VarEq("root".into(), "root".into(), EqMode::Mon),
            Query::leaf("y"),
        );
        assert!(matches!(
            eval_query(&q, &t("<a/>")),
            Err(XqError::BadEqualityMode)
        ));
    }
}
