//! Differential property testing of the `cv_monad::opt` pass: on random
//! expressions (seeded with the paper's derived constructions, the
//! optimizer's prey) and random documents, the optimized expression must
//! agree with the naive evaluator whenever the naive evaluator succeeds.
//!
//! The one-sided contract is deliberate: cleanup rules like `fuse-proj`
//! delete dead tuple fields *together with their failures*, so the
//! optimized form may succeed where the naive one errors — but never
//! differ on a value the naive evaluator produces.

use cv_monad::derived::{
    derived_diff, derived_intersect, derived_nest_binary, derived_not, member_pred, pred_and,
    pred_or, pred_true, sigma_gamma, subset_pred,
};
use cv_monad::{eval, opt, CollectionKind, Cond, Expr, Operand};
use cv_value::Value;
use proptest::prelude::*;

const K: CollectionKind = CollectionKind::Set;

/// Random input of the shape every generated expression can consume:
/// `⟨R: {…atoms…}, S: {…atoms…}⟩` over a small alphabet (collisions make
/// difference/intersection/membership nontrivial).
fn input_value() -> impl Strategy<Value = Value> {
    let atoms =
        || prop::collection::vec((0u64..6).prop_map(|i| Value::atom(format!("v{i}"))), 0..5);
    (atoms(), atoms()).prop_map(|(r, s)| Value::tuple([("R", Value::set(r)), ("S", Value::set(s))]))
}

/// Conditions on the `⟨R, S⟩` input tuple.
fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::True),
        Just(Cond::Subset(Operand::path("R"), Operand::path("S"))),
        Just(Cond::eq_deep(Operand::path("R"), Operand::path("S"))),
        Just(Cond::eq_deep(
            Operand::path("R"),
            Operand::konst(Value::set([]))
        )),
    ]
}

/// Predicates (`τ → {⟨⟩}`) on the input tuple, derived and built-in.
fn pred(size: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(pred_true()),
        Just(Expr::EmptyColl),
        cond().prop_map(Expr::Pred),
        Just(subset_pred("R", "S")),
        Just(subset_pred("S", "R")),
        Just(member_pred("R", "S")),
    ];
    if size == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        2 => leaf,
        1 => (pred(size - 1), pred(size - 1)).prop_map(|(a, b)| pred_and(a, b)),
        1 => (pred(size - 1), pred(size - 1)).prop_map(|(a, b)| pred_or(a, b)),
        1 => pred(size - 1).prop_map(derived_not),
    ]
    .boxed()
}

/// Collection-valued expressions on the input tuple.
fn collection_expr(size: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(Expr::proj("R")),
        Just(Expr::proj("S")),
        Just(derived_diff()),
        Just(derived_intersect(Expr::proj("R"), Expr::proj("S"))),
        Just(Expr::Diff(Expr::proj("R").into(), Expr::proj("S").into())),
    ];
    if size == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        3 => leaf,
        1 => pred(size - 1),
        1 => (collection_expr(size - 1), collection_expr(size - 1))
            .prop_map(|(a, b)| a.union(b)),
        1 => collection_expr(size - 1).prop_map(|e| {
            e.then(Expr::Select(Cond::eq_deep(
                Operand::this(),
                Operand::atom("v0"),
            )))
        }),
        1 => collection_expr(size - 1)
            .prop_map(|e| e.then(sigma_gamma(Expr::Pred(Cond::True)))),
        1 => collection_expr(size - 1).prop_map(|e| e.then(Expr::Sng.mapped()).then(Expr::Flatten)),
        1 => collection_expr(size - 1).prop_map(|e| e.then(Expr::Id).then(Expr::Unique)),
        1 => (collection_expr(size - 1), collection_expr(size - 1)).prop_map(|(a, b)| {
            Expr::mk_tuple([("A", a), ("B", b)]).then(Expr::proj("A"))
        }),
    ]
    .boxed()
}

/// `⟨R, S⟩` inputs with `kind` collections of *duplicate-rich* atoms —
/// lists and bags must catch multiplicity-changing rewrites (the class of
/// bug a set-only suite cannot see).
fn input_of_kind(kind: CollectionKind) -> impl Strategy<Value = Value> {
    let atoms =
        || prop::collection::vec((0u64..3).prop_map(|i| Value::atom(format!("v{i}"))), 0..6);
    (atoms(), atoms()).prop_map(move |(r, s)| {
        Value::tuple([
            ("R", Value::collection(kind, r)),
            ("S", Value::collection(kind, s)),
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// If the naive evaluator succeeds, the optimized expression yields
    /// exactly the same value.
    #[test]
    fn optimized_agrees_with_naive(e in collection_expr(3), input in input_value()) {
        let naive = eval(&e, K, &input);
        prop_assume!(naive.is_ok());
        let (rewritten, _) = opt::optimize(&e, K);
        let optimized = eval(&rewritten, K, &input);
        prop_assert_eq!(
            optimized.ok(), naive.ok(),
            "optimizer changed the result of {} (rewritten: {})", e, rewritten
        );
    }

    /// The same contract under list semantics (order and multiplicity
    /// matter — this is what forces the set-only gates on
    /// `intersect-2.3`/`or-union`/`nest-fn.5`).
    #[test]
    fn optimized_agrees_with_naive_on_lists(
        e in collection_expr(3),
        input in input_of_kind(CollectionKind::List),
    ) {
        let naive = eval(&e, CollectionKind::List, &input);
        prop_assume!(naive.is_ok());
        let (rewritten, _) = opt::optimize(&e, CollectionKind::List);
        prop_assert_eq!(
            eval(&rewritten, CollectionKind::List, &input).ok(), naive.ok(),
            "optimizer changed the list result of {} (rewritten: {})", e, rewritten
        );
    }

    /// And under bag semantics (multiplicities without order).
    #[test]
    fn optimized_agrees_with_naive_on_bags(
        e in collection_expr(3),
        input in input_of_kind(CollectionKind::Bag),
    ) {
        let naive = eval(&e, CollectionKind::Bag, &input);
        prop_assume!(naive.is_ok());
        let (rewritten, _) = opt::optimize(&e, CollectionKind::Bag);
        prop_assert_eq!(
            eval(&rewritten, CollectionKind::Bag, &input).ok(), naive.ok(),
            "optimizer changed the bag result of {} (rewritten: {})", e, rewritten
        );
    }

    /// The pass is idempotent: its output is a normal form.
    #[test]
    fn optimizer_is_idempotent(e in collection_expr(3)) {
        let (once, _) = opt::optimize(&e, K);
        let (twice, _) = opt::optimize(&once, K);
        prop_assert_eq!(&once, &twice, "not a normal form for {}", e);
    }

    /// Rewriting never grows the expression (every rule shrinks or
    /// preserves operator count).
    #[test]
    fn optimizer_never_grows(e in collection_expr(3)) {
        let (rewritten, _) = opt::optimize(&e, K);
        prop_assert!(
            rewritten.size() <= e.size(),
            "{} ({} ops) grew to {} ({} ops)",
            e, e.size(), rewritten, rewritten.size()
        );
    }

    /// Nest rewriting (sets only) on random binary relations.
    #[test]
    fn nest_rewrite_agrees_on_random_relations(
        rows in prop::collection::vec((0u64..4, 0u64..4), 0..8)
    ) {
        let rel = Value::set(rows.into_iter().map(|(a, b)| {
            Value::tuple([
                ("A", Value::atom(format!("a{a}"))),
                ("B", Value::atom(format!("b{b}"))),
            ])
        }));
        let derived = derived_nest_binary("A", "B", "C");
        let (rewritten, trace) = opt::optimize(&derived, K);
        prop_assert!(trace.rules().contains(&"nest-fn.5"));
        prop_assert_eq!(
            eval(&rewritten, K, &rel).unwrap(),
            eval(&derived, K, &rel).unwrap()
        );
    }
}
