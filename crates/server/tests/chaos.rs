//! The chaos soak: pipelined clients against a live reactor server
//! while the seeded fault registry injects worker panics, dropped
//! completions, evaluation delays, and admission refusals.
//!
//! The contracts under fault:
//!
//! * **Zero lost or duplicated responses** — every query id gets exactly
//!   one answer, in pipeline order, whatever faults fired around it.
//! * **Closed outcome vocabulary** — every answer is `ok`,
//!   `internal_error`, or `overloaded`; faults never leak as hangs,
//!   malformed frames, or dropped connections.
//! * **Self-healing** — workers lost to injected crashes are respawned;
//!   the pool is back at full strength by the end of the soak.
//! * **Gauge integrity** — `queued`/`admitted`/`in_flight` all return
//!   to zero; a leaked admission slot would starve later admissions.
//! * **Replayability** — the same `(spec, seed)` drives the same fault
//!   decisions: under a deterministic schedule the entire outcome
//!   sequence is identical run over run.
//!
//! The default soak is sized for CI; the `#[ignore]`d randomized soak
//! (run by the scheduled workflow) turns the volume up and takes its
//! seed from `XQ_CHAOS_SEED` or the clock, printing it for replay.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cv_xtree::{parse_tree, ArenaDoc};
use xq_core::Faults;
use xq_server::{Server, ServerConfig};

/// The soak spec: every fault point engaged at once.
const SOAK_SPEC: &str =
    "worker-panic=0.08,completion-drop=0.04,slow-eval=0.3@1,submit-refusal=0.05";
const SOAK_SEED: u64 = 0xC0FFEE;

fn docs() -> HashMap<String, Arc<ArenaDoc>> {
    let tree = parse_tree("<r><a/><b><k/></b><k/></r>").unwrap();
    let mut m = HashMap::new();
    m.insert("d0".to_string(), Arc::new(ArenaDoc::from_tree(&tree)));
    m
}

fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One pipelined client: fire `count` queries, then read exactly
/// `count` answers and check ids arrive in submission order with an
/// allowed code. Returns the outcome transcript, one byte per query:
/// `o` (ok), `i` (internal_error), `s` (overloaded).
fn pipelined_conn(server: &Server, count: u64) -> String {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut w = &stream;
    for id in 1..=count {
        let line = format!(r#"{{"op":"query","id":{id},"doc":"d0","query":"$root/*"}}"#);
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
    }
    w.flush().unwrap();
    let mut reader = BufReader::new(&stream);
    let mut transcript = String::with_capacity(count as usize);
    for id in 1..=count {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed before id {id} answered");
        let frame = xq_server::Frame::parse(line.trim_end()).expect("well-formed frame");
        assert_eq!(
            frame.get_uint("id"),
            Some(id),
            "responses out of order (or lost/duplicated): {line:?}"
        );
        if frame.get_bool("ok") == Some(true) {
            transcript.push('o');
            continue;
        }
        match frame.get_str("code") {
            Some("internal_error") => transcript.push('i'),
            Some("overloaded") => {
                // Injected submit-refusals must still carry the real
                // shed shape, retry hint included.
                assert!(frame.get_uint("retry_after_ms").is_some());
                transcript.push('s');
            }
            other => panic!("unexpected code {other:?} in {line:?}"),
        }
    }
    transcript
}

/// Runs one soak: `conns` sequential pipelined connections of `per_conn`
/// queries against a faulted server; asserts the integrity contracts and
/// returns the concatenated outcome transcript for replay comparison.
fn run_soak(spec: &str, seed: u64, workers: usize, conns: usize, per_conn: u64) -> String {
    let total = conns as u64 * per_conn;
    let server = Server::start(ServerConfig {
        workers,
        docs: docs(),
        faults: Some(Arc::new(Faults::from_spec(spec, seed).unwrap())),
        // Every query can in principle kill a worker (completion-drop);
        // the soak's self-healing contract needs budget to cover that.
        restart_budget: total as u32,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut transcript = String::new();
    for _ in 0..conns {
        transcript.push_str(&pipelined_conn(&server, per_conn));
    }
    let count = |c| transcript.bytes().filter(|&b| b == c).count() as u64;
    let (ok, internal, shed) = (count(b'o'), count(b'i'), count(b's'));
    assert_eq!(ok + internal + shed, total, "every query answered once");
    // The server-side counters agree with the client-side tally.
    let stats = server.stats();
    assert_eq!(
        stats.served.load(std::sync::atomic::Ordering::Relaxed),
        ok,
        "served counter"
    );
    assert_eq!(
        stats
            .internal_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        internal,
        "internal_errors counter"
    );
    assert_eq!(
        stats.shed.load(std::sync::atomic::Ordering::Relaxed),
        shed,
        "shed counter"
    );
    // Gauge integrity + self-healing, then a clean drain.
    wait_for("gauges back to zero", || {
        server.queue_depth() == 0 && server.admitted_depth() == 0 && server.in_flight() == 0
    });
    wait_for("pool back to full strength", || {
        server.alive_workers() == workers
    });
    let mut server = server;
    server.shutdown();
    transcript
}

#[test]
fn seeded_soak_holds_every_integrity_contract() {
    let t = run_soak(SOAK_SPEC, SOAK_SEED, 3, 4, 30);
    // The pinned seed is chosen to actually exercise the machinery: the
    // soak must contain real failures, not coast through a lucky run.
    assert!(t.contains('i'), "no injected failure surfaced ({t})");
    assert!(t.contains('s'), "no injected refusal surfaced ({t})");
    assert!(t.contains('o'), "everything failed — spec miscalibrated");
}

#[test]
fn seeded_soak_replays_exactly_under_a_deterministic_schedule() {
    // One worker + one connection at a time ⇒ draws happen in a fixed
    // order, so two runs with the same (spec, seed) must agree not just
    // statistically but *exactly*, outcome by outcome.
    let a = run_soak(SOAK_SPEC, SOAK_SEED, 1, 1, 60);
    let b = run_soak(SOAK_SPEC, SOAK_SEED, 1, 1, 60);
    assert_eq!(a, b, "same seed, same faults, same outcome transcript");
    let c = run_soak(SOAK_SPEC, SOAK_SEED + 1, 1, 1, 60);
    assert_ne!(a, c, "a different seed explores a different failure path");
}

/// The long randomized soak for the scheduled workflow: a fresh seed per
/// run (printed for replay via `XQ_FAULT_SEED`/`XQ_CHAOS_SEED`), more
/// traffic, every contract still held.
#[test]
#[ignore = "long-running; exercised by the scheduled workflow"]
fn randomized_seed_soak() {
    let seed = std::env::var("XQ_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos() as u64
        });
    println!("chaos seed: {seed} (replay with XQ_CHAOS_SEED={seed})");
    let t = run_soak(SOAK_SPEC, seed, 3, 8, 200);
    let count = |c| t.bytes().filter(|&b| b == c).count();
    println!(
        "ok={} internal={} shed={}",
        count(b'o'),
        count(b'i'),
        count(b's')
    );
    // With 1600 queries the engaged spec makes a zero-failure run
    // astronomically unlikely under any seed.
    assert!(t.contains('o'), "seed {seed}: everything failed");
    assert!(
        count(b'i') + count(b's') > 0,
        "seed {seed}: no fault fired across 1600 queries"
    );
}
