//! Quantified Boolean formulas and the Proposition 7.4 reduction to
//! composition-free Core XQuery with negation (PSPACE-hardness).

use cv_xtree::Tree;
use xq_core::ast::{Cond, EqMode, Query, Var};

/// A quantifier-free Boolean formula over variables `x0, x1, …`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// A propositional variable by index.
    Var(usize),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

/// A quantifier prefix entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantifier {
    /// `∀`
    Forall,
    /// `∃`
    Exists,
}

/// A prenex quantified Boolean formula `Q1 x1 … Qk xk Φ(x1…xk)`.
/// Variable `i` of the matrix is bound by `prefix[i]`.
#[derive(Clone, Debug)]
pub struct Qbf {
    /// The quantifier prefix, one entry per variable.
    pub prefix: Vec<Quantifier>,
    /// The quantifier-free matrix.
    pub matrix: Formula,
}

impl Formula {
    fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Formula::Var(i) => assignment[*i],
            Formula::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Formula::Or(a, b) => a.eval(assignment) || b.eval(assignment),
            Formula::Not(a) => !a.eval(assignment),
        }
    }
}

impl Qbf {
    /// Decides the formula by exhaustive search (the oracle).
    pub fn is_true(&self) -> bool {
        fn go(q: &Qbf, i: usize, assignment: &mut Vec<bool>) -> bool {
            if i == q.prefix.len() {
                return q.matrix.eval(assignment);
            }
            let mut result = match q.prefix[i] {
                Quantifier::Forall => true,
                Quantifier::Exists => false,
            };
            for b in [false, true] {
                assignment.push(b);
                let r = go(q, i + 1, assignment);
                assignment.pop();
                match q.prefix[i] {
                    Quantifier::Forall => result &= r,
                    Quantifier::Exists => result |= r,
                }
            }
            result
        }
        go(self, 0, &mut Vec::new())
    }
}

/// The fixed data tree of Proposition 7.4: a root with children labeled
/// `true` and `false`.
pub fn qbf_tree() -> Tree {
    Tree::node("r", [Tree::leaf("true"), Tree::leaf("false")])
}

fn var_name(i: usize) -> Var {
    Var::new(format!("x{i}"))
}

fn formula_cond(f: &Formula) -> Cond {
    match f {
        // xi ⇝ ($xi =atomic ⟨true/⟩)
        Formula::Var(i) => Cond::ConstEq(var_name(*i), "true".into(), EqMode::Atomic),
        Formula::And(a, b) => formula_cond(a).and(formula_cond(b)),
        Formula::Or(a, b) => formula_cond(a).or(formula_cond(b)),
        Formula::Not(a) => formula_cond(a).negate(),
    }
}

/// The Proposition 7.4 reduction: a composition-free query
///
/// ```text
/// ⟨a⟩{ if Q′1 $x1 in $root/* satisfies (… (Q′k $xk in $root/*
///      satisfies Φ′) …) then ⟨yes/⟩ }⟨/a⟩
/// ```
///
/// that is true on [`qbf_tree`] iff the QBF is true.
pub fn qbf_query(q: &Qbf) -> Query {
    let mut cond = formula_cond(&q.matrix);
    for (i, quant) in q.prefix.iter().enumerate().rev() {
        let src = Query::child_any(Query::var("root"));
        cond = match quant {
            Quantifier::Exists => Cond::some(var_name(i), src, cond),
            Quantifier::Forall => Cond::every(var_name(i), src, cond),
        };
    }
    Query::elem("a", Query::if_then(cond, Query::leaf("yes")))
}

/// A deterministic pseudo-random QBF generator for test fleets.
pub fn random_qbf(gen: &mut cv_xtree::TreeGen, vars: usize, clauses: usize) -> Qbf {
    let prefix = (0..vars)
        .map(|_| {
            if gen.chance(1, 2) {
                Quantifier::Forall
            } else {
                Quantifier::Exists
            }
        })
        .collect();
    // Random 3-CNF-ish matrix.
    let mut matrix: Option<Formula> = None;
    for _ in 0..clauses {
        let mut clause: Option<Formula> = None;
        for _ in 0..3 {
            let v = Formula::Var(gen.below(vars));
            let lit = if gen.chance(1, 2) {
                Formula::Not(Box::new(v))
            } else {
                v
            };
            clause = Some(match clause {
                None => lit,
                Some(c) => Formula::Or(Box::new(c), Box::new(lit)),
            });
        }
        let clause = clause.expect("three literals");
        matrix = Some(match matrix {
            None => clause,
            Some(m) => Formula::And(Box::new(m), Box::new(clause)),
        });
    }
    Qbf {
        prefix,
        matrix: matrix.expect("at least one clause"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xq_core::{boolean_result, is_composition_free};

    /// Example 7.5: ∀x∃y((¬x ∨ y) ∧ (x ∨ ¬y)) — true.
    fn example_7_5() -> Qbf {
        Qbf {
            prefix: vec![Quantifier::Forall, Quantifier::Exists],
            matrix: Formula::And(
                Box::new(Formula::Or(
                    Box::new(Formula::Not(Box::new(Formula::Var(0)))),
                    Box::new(Formula::Var(1)),
                )),
                Box::new(Formula::Or(
                    Box::new(Formula::Var(0)),
                    Box::new(Formula::Not(Box::new(Formula::Var(1)))),
                )),
            ),
        }
    }

    #[test]
    fn oracle_handles_example_7_5() {
        assert!(example_7_5().is_true());
        // ∀x∀y (x ∧ y) is false.
        let f = Qbf {
            prefix: vec![Quantifier::Forall, Quantifier::Forall],
            matrix: Formula::And(Box::new(Formula::Var(0)), Box::new(Formula::Var(1))),
        };
        assert!(!f.is_true());
        // ∃x x is true.
        let f = Qbf {
            prefix: vec![Quantifier::Exists],
            matrix: Formula::Var(0),
        };
        assert!(f.is_true());
    }

    #[test]
    fn reduction_is_composition_free() {
        let q = qbf_query(&example_7_5());
        assert!(is_composition_free(&q), "{q}");
    }

    #[test]
    fn reduction_matches_oracle_on_example_7_5() {
        let q = qbf_query(&example_7_5());
        assert!(boolean_result(&q, &qbf_tree()).unwrap());
    }

    #[test]
    fn reduction_matches_oracle_on_a_fleet() {
        let mut gen = cv_xtree::TreeGen::new(2005);
        let tree = qbf_tree();
        let (mut trues, mut falses) = (0, 0);
        for vars in 1..=4 {
            for _ in 0..8 {
                let f = random_qbf(&mut gen, vars, vars + 1);
                let want = f.is_true();
                let q = qbf_query(&f);
                assert!(is_composition_free(&q));
                let got = boolean_result(&q, &tree).unwrap();
                assert_eq!(got, want, "formula {f:?}");
                if want {
                    trues += 1;
                } else {
                    falses += 1;
                }
            }
        }
        assert!(trues > 0 && falses > 0, "fleet covers both outcomes");
    }

    #[test]
    fn reduction_agrees_with_nested_loop_engine() {
        let mut gen = cv_xtree::TreeGen::new(77);
        let tree = qbf_tree();
        let doc = cv_xtree::ArenaDoc::from_tree(&tree);
        for _ in 0..10 {
            let f = random_qbf(&mut gen, 3, 3);
            let q = qbf_query(&f);
            let mut engine = xq_compfree::NestedLoopEngine::new(&doc);
            assert_eq!(engine.boolean(&q).unwrap(), f.is_true(), "{f:?}");
        }
    }

    #[test]
    fn query_size_is_linear_in_formula_size() {
        let mut gen = cv_xtree::TreeGen::new(3);
        let small = qbf_query(&random_qbf(&mut gen, 2, 2)).size();
        let big = qbf_query(&random_qbf(&mut gen, 8, 8)).size();
        assert!(big < 40 * small, "small {small}, big {big}");
    }
}
